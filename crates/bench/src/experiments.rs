//! Reusable experiment drivers shared by the table/figure binaries.
//!
//! Each function reproduces the measurement loop behind one family of
//! results in the paper: full algorithm comparisons on a distribution
//! (Table 3 / Fig. 1), the heavy-key-detection ablation (Fig. 4(a)(b)), the
//! dovetail-merge ablation (Fig. 4(c)(d)), thread scaling (Fig. 4(e),
//! Figs. 5–20), input-size scaling (Fig. 4(f), Figs. 21–36), the
//! applications (Table 4), and the linear-work theory checks
//! (Theorems 4.6/4.7).

use crate::runner::{median_time_secs, SorterKind};
use apps::morton::morton_sort_2d_with;
use apps::transpose_with_sorter;
use dtsort::{MergeStrategy, SortConfig, StatsSnapshot};
use workloads::dist::{generate_pairs_u32, generate_pairs_u64, Distribution};
use workloads::graphs::Csr;
use workloads::points::Point2;

/// Measures every sorter in `sorters` on one distribution instance.
/// Returns the median seconds per sorter, in order.
pub fn measure_distribution(
    dist: &Distribution,
    n: usize,
    bits: u32,
    reps: usize,
    sorters: &[SorterKind],
    verify: bool,
    seed: u64,
) -> Vec<f64> {
    if bits == 32 {
        let input = generate_pairs_u32(dist, n, seed);
        sorters
            .iter()
            .map(|s| {
                let t = median_time_secs(&input, reps, |v| s.sort_pairs_u32(v));
                if verify {
                    let mut check = input.clone();
                    s.sort_pairs_u32(&mut check);
                    assert!(
                        check.windows(2).all(|w| w[0].0 <= w[1].0),
                        "{} produced unsorted output on {}",
                        s.name(),
                        dist.label()
                    );
                }
                t
            })
            .collect()
    } else {
        let input = generate_pairs_u64(dist, n, seed);
        sorters
            .iter()
            .map(|s| {
                let t = median_time_secs(&input, reps, |v| s.sort_pairs_u64(v));
                if verify {
                    let mut check = input.clone();
                    s.sort_pairs_u64(&mut check);
                    assert!(
                        check.windows(2).all(|w| w[0].0 <= w[1].0),
                        "{} produced unsorted output on {}",
                        s.name(),
                        dist.label()
                    );
                }
                t
            })
            .collect()
    }
}

/// Fig. 4(a)(b): DTSort with and without heavy-key detection.
/// Returns `(with_detection, without_detection)` median seconds.
pub fn measure_heavy_ablation(
    dist: &Distribution,
    n: usize,
    bits: u32,
    reps: usize,
    seed: u64,
) -> (f64, f64) {
    let full = SortConfig::default();
    let plain = SortConfig::plain();
    if bits == 32 {
        let input = generate_pairs_u32(dist, n, seed);
        (
            median_time_secs(&input, reps, |v| dtsort::sort_pairs_with(v, &full)),
            median_time_secs(&input, reps, |v| dtsort::sort_pairs_with(v, &plain)),
        )
    } else {
        let input = generate_pairs_u64(dist, n, seed);
        (
            median_time_secs(&input, reps, |v| dtsort::sort_pairs_with(v, &full)),
            median_time_secs(&input, reps, |v| dtsort::sort_pairs_with(v, &plain)),
        )
    }
}

/// Fig. 4(c)(d): the dovetail merge versus the parallel-merge baseline and
/// the merge-free lower bound ("Others").
/// Returns `(dtmerge, plmerge, no_merge)` median seconds.
pub fn measure_merge_ablation(
    dist: &Distribution,
    n: usize,
    bits: u32,
    reps: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let mk = |strategy: MergeStrategy| SortConfig {
        merge_strategy: strategy,
        ..SortConfig::default()
    };
    let cfgs = [
        mk(MergeStrategy::Dovetail),
        mk(MergeStrategy::ParallelMerge),
        mk(MergeStrategy::Skip),
    ];
    let mut out = [0.0f64; 3];
    if bits == 32 {
        let input = generate_pairs_u32(dist, n, seed);
        for (i, cfg) in cfgs.iter().enumerate() {
            out[i] = median_time_secs(&input, reps, |v| dtsort::sort_pairs_with(v, cfg));
        }
    } else {
        let input = generate_pairs_u64(dist, n, seed);
        for (i, cfg) in cfgs.iter().enumerate() {
            out[i] = median_time_secs(&input, reps, |v| dtsort::sort_pairs_with(v, cfg));
        }
    }
    (out[0], out[1], out[2])
}

/// Thread-scaling measurement (Fig. 4(e), Figs. 5–20): median seconds of
/// each sorter on the instance, using a dedicated pool of `threads` workers.
pub fn measure_with_threads(
    dist: &Distribution,
    n: usize,
    bits: u32,
    reps: usize,
    threads: usize,
    sorters: &[SorterKind],
    seed: u64,
) -> Vec<f64> {
    parlay::par::with_threads(threads, || {
        measure_distribution(dist, n, bits, reps, sorters, false, seed)
    })
}

/// Table 4 (graph transpose): measures transposing `g` with each sorter.
pub fn measure_transpose(g: &Csr, reps: usize, sorters: &[SorterKind]) -> Vec<f64> {
    sorters
        .iter()
        .map(|s| {
            let kind = *s;
            // The sorted edge list dominates the cost; we time the whole
            // application (pair construction + sort + CSR rebuild), as the
            // paper does.
            let dummy = [0u8];
            median_time_secs(&dummy, reps, |_| {
                let t = transpose_with_sorter(g, |edges| kind.sort_pairs_u32(edges));
                std::hint::black_box(t.num_edges());
            })
        })
        .collect()
}

/// Table 4 (Morton order): measures Morton-sorting the 2D points with each
/// sorter.
pub fn measure_morton(points: &[Point2], reps: usize, sorters: &[SorterKind]) -> Vec<f64> {
    sorters
        .iter()
        .map(|s| {
            let kind = *s;
            let dummy = [0u8];
            median_time_secs(&dummy, reps, |_| {
                let sorted = morton_sort_2d_with(points, |codes| kind.sort_codes(codes));
                std::hint::black_box(sorted.len());
            })
        })
        .collect()
}

/// Theory check (Theorems 4.6/4.7): returns the instrumentation snapshot of
/// a DTSort run on the distribution, from which the harness derives the
/// records-moved-per-input-record work proxy.
pub fn measure_work_counters(dist: &Distribution, n: usize, bits: u32, seed: u64) -> StatsSnapshot {
    if bits == 32 {
        let mut input = generate_pairs_u32(dist, n, seed);
        dtsort::sort_pairs_with_stats(&mut input, &SortConfig::default())
    } else {
        let mut input = generate_pairs_u64(dist, n, seed);
        dtsort::sort_pairs_with_stats(&mut input, &SortConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_measurement_returns_one_time_per_sorter() {
        let sorters = [SorterKind::DtSort, SorterKind::SampleSort];
        let t = measure_distribution(
            &Distribution::Zipfian { s: 1.0 },
            20_000,
            32,
            1,
            &sorters,
            true,
            1,
        );
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn ablations_return_positive_times() {
        let d = Distribution::Exponential { lambda: 10.0 };
        let (a, b) = measure_heavy_ablation(&d, 20_000, 32, 1, 2);
        assert!(a > 0.0 && b > 0.0);
        let (x, y, z) = measure_merge_ablation(&d, 20_000, 64, 1, 3);
        assert!(x > 0.0 && y > 0.0 && z > 0.0);
    }

    #[test]
    fn thread_scoped_measurement_works() {
        let t = measure_with_threads(
            &Distribution::Uniform { distinct: 1000 },
            10_000,
            32,
            1,
            2,
            &[SorterKind::DtSort],
            4,
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn application_measurements_work() {
        let e = workloads::graphs::power_law_graph(500, 5_000, 1.2, 5);
        let g = Csr::from_unsorted_edges(e.num_vertices, &e.edges);
        let t = measure_transpose(&g, 1, &[SorterKind::DtSort, SorterKind::Plis]);
        assert_eq!(t.len(), 2);

        let pts = workloads::points::uniform_points_2d(5_000, 6);
        let t = measure_morton(&pts, 1, &[SorterKind::DtSort]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn work_counters_show_heavy_records_on_skewed_input() {
        let snap = measure_work_counters(&Distribution::Uniform { distinct: 10 }, 50_000, 32, 7);
        assert!(snap.heavy_records > 25_000, "{snap:?}");
        let snap_uni =
            measure_work_counters(&Distribution::Uniform { distinct: 1 << 40 }, 50_000, 64, 7);
        assert_eq!(snap_uni.heavy_records, 0, "{snap_uni:?}");
    }
}
