//! A minimal command-line parser shared by the harness binaries.
//!
//! All experiment binaries accept the same scaling flags so the paper's
//! machine-scale runs (n = 10^9, 96 cores) can be shrunk to laptop scale
//! without touching code:
//!
//! * `--n <records>` — input size (default 10^7 unless a binary overrides).
//! * `--bits <32|64>` — key width.
//! * `--reps <k>` — repetitions per measurement (median is reported).
//! * `--threads <t>` — rayon thread count (0 = all available).
//! * `--scale <f>` — scale factor for application datasets.
//! * `--verify` — check output correctness after each measured run.

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of records per instance.
    pub n: usize,
    /// Key width in bits (32 or 64).
    pub bits: u32,
    /// Repetitions per measurement.
    pub reps: usize,
    /// Thread count (0 = rayon default).
    pub threads: usize,
    /// Scale factor for application datasets.
    pub scale: f64,
    /// Verify sortedness after measuring.
    pub verify: bool,
    /// Free-form selector (e.g. `--app transpose`).
    pub app: String,
    /// Remaining unrecognized flags (kept for binary-specific options).
    pub rest: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            n: 10_000_000,
            bits: 32,
            reps: 3,
            threads: 0,
            scale: 1.0,
            verify: false,
            app: String::new(),
            rest: Vec::new(),
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, falling back to defaults.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (used by tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter().peekable();
        while let Some(flag) = it.next() {
            let mut take_value = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--n" => out.n = parse_human_number(&take_value()).unwrap_or(out.n),
                "--bits" => out.bits = take_value().parse().unwrap_or(out.bits),
                "--reps" => out.reps = take_value().parse().unwrap_or(out.reps),
                "--threads" => out.threads = take_value().parse().unwrap_or(out.threads),
                "--scale" => out.scale = take_value().parse().unwrap_or(out.scale),
                "--app" => out.app = take_value(),
                "--verify" => out.verify = true,
                other => out.rest.push(other.to_string()),
            }
        }
        if out.bits != 32 && out.bits != 64 {
            eprintln!("--bits must be 32 or 64; using 32");
            out.bits = 32;
        }
        out
    }

    /// Applies the `--threads` option by building a bounded global rayon
    /// pool.  Must be called before any parallel work; errors (e.g. the pool
    /// already initialized) are reported but not fatal.
    pub fn apply_thread_limit(&self) {
        if self.threads > 0 {
            if let Err(e) = rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build_global()
            {
                eprintln!("note: could not set global thread pool: {e}");
            }
        }
    }
}

/// Parses numbers with scientific or suffix notation: `1e7`, `10M`, `2.5k`,
/// `1000000`.
pub fn parse_human_number(s: &str) -> Option<usize> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.chars().last().unwrap() {
        'k' | 'K' => (&s[..s.len() - 1], 1_000.0),
        'm' | 'M' => (&s[..s.len() - 1], 1_000_000.0),
        'g' | 'G' | 'b' | 'B' => (&s[..s.len() - 1], 1_000_000_000.0),
        _ => (s, 1.0),
    };
    let v: f64 = num.parse().ok()?;
    if v < 0.0 {
        return None;
    }
    Some((v * mult).round() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.n, 10_000_000);
        assert_eq!(a.bits, 32);
        assert_eq!(a.reps, 3);
        assert!(!a.verify);
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--n",
            "1e6",
            "--bits",
            "64",
            "--reps",
            "5",
            "--threads",
            "4",
            "--scale",
            "0.5",
            "--app",
            "transpose",
            "--verify",
            "--extra",
        ]);
        assert_eq!(a.n, 1_000_000);
        assert_eq!(a.bits, 64);
        assert_eq!(a.reps, 5);
        assert_eq!(a.threads, 4);
        assert!((a.scale - 0.5).abs() < 1e-12);
        assert_eq!(a.app, "transpose");
        assert!(a.verify);
        assert_eq!(a.rest, vec!["--extra".to_string()]);
    }

    #[test]
    fn invalid_bits_fall_back() {
        let a = parse(&["--bits", "48"]);
        assert_eq!(a.bits, 32);
    }

    #[test]
    fn human_numbers() {
        assert_eq!(parse_human_number("1000"), Some(1000));
        assert_eq!(parse_human_number("1e7"), Some(10_000_000));
        assert_eq!(parse_human_number("2.5k"), Some(2500));
        assert_eq!(parse_human_number("10M"), Some(10_000_000));
        assert_eq!(parse_human_number("1G"), Some(1_000_000_000));
        assert_eq!(parse_human_number(""), None);
        assert_eq!(parse_human_number("-5"), None);
        assert_eq!(parse_human_number("abc"), None);
    }
}
