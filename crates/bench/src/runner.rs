//! The registry of sorting algorithms measured by the harness.
//!
//! Each variant corresponds to one column of the paper's Table 2 / Table 3:
//! `Ours` (DovetailSort), `PLIS`, `IPS2Ra`/`RS` (unstable in-place radix
//! class), `RD` (LSD radix class), `PLSS`/`IPS4o` (samplesort class), plus
//! the rayon library sort as an extra reference point.  The harness runs
//! every algorithm through the same entry points so the comparison isolates
//! the algorithm.

use dtsort::SortConfig;
use std::time::Instant;

/// A sorting algorithm measured by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SorterKind {
    /// DovetailSort (the paper's contribution, column "Ours").
    DtSort,
    /// DovetailSort without heavy-key detection (the "Plain" ablation).
    DtSortPlain,
    /// Stable parallel MSD radix sort (PLIS class).
    Plis,
    /// Unstable in-place MSD radix sort (IPS2Ra / RegionsSort class).
    InplaceRadix,
    /// LSD radix sort (RADULS class).
    Lsd,
    /// Parallel comparison samplesort (PLSS / IPS4o class).
    SampleSort,
    /// rayon's parallel unstable comparison sort (library reference).
    ParStdSort,
}

impl SorterKind {
    /// The algorithms of the main comparison (Table 3 / Fig. 1), in the
    /// paper's column order.
    pub fn table3_lineup() -> Vec<SorterKind> {
        vec![
            SorterKind::DtSort,
            SorterKind::Plis,
            SorterKind::InplaceRadix,
            SorterKind::Lsd,
            SorterKind::SampleSort,
            SorterKind::ParStdSort,
        ]
    }

    /// Every registered algorithm.
    pub fn all() -> Vec<SorterKind> {
        let mut v = Self::table3_lineup();
        v.insert(1, SorterKind::DtSortPlain);
        v
    }

    /// Column label, following the paper's naming.
    pub fn name(&self) -> &'static str {
        match self {
            SorterKind::DtSort => "Ours(DTSort)",
            SorterKind::DtSortPlain => "Plain",
            SorterKind::Plis => "PLIS*",
            SorterKind::InplaceRadix => "IPRa*",
            SorterKind::Lsd => "LSD*",
            SorterKind::SampleSort => "SampleSort*",
            SorterKind::ParStdSort => "ParStdSort",
        }
    }

    /// Whether the algorithm is stable.
    pub fn is_stable(&self) -> bool {
        !matches!(self, SorterKind::InplaceRadix | SorterKind::ParStdSort)
    }

    /// Whether the algorithm is an integer sort (vs comparison sort).
    pub fn is_integer_sort(&self) -> bool {
        !matches!(self, SorterKind::SampleSort | SorterKind::ParStdSort)
    }

    /// Sorts `(u32 key, u32 value)` records.
    pub fn sort_pairs_u32(&self, data: &mut [(u32, u32)]) {
        match self {
            SorterKind::DtSort => dtsort::sort_pairs(data),
            SorterKind::DtSortPlain => dtsort::sort_pairs_with(data, &SortConfig::plain()),
            SorterKind::Plis => baselines::plis::sort_pairs(data),
            SorterKind::InplaceRadix => baselines::inplace_radix::sort_pairs(data),
            SorterKind::Lsd => baselines::lsd::sort_pairs(data),
            SorterKind::SampleSort => baselines::samplesort::sort_pairs(data),
            SorterKind::ParStdSort => baselines::stdsort::par_unstable_by_key(data, |r| r.0),
        }
    }

    /// Sorts `(u64 key, u64 value)` records.
    pub fn sort_pairs_u64(&self, data: &mut [(u64, u64)]) {
        match self {
            SorterKind::DtSort => dtsort::sort_pairs(data),
            SorterKind::DtSortPlain => dtsort::sort_pairs_with(data, &SortConfig::plain()),
            SorterKind::Plis => baselines::plis::sort_pairs(data),
            SorterKind::InplaceRadix => baselines::inplace_radix::sort_pairs(data),
            SorterKind::Lsd => baselines::lsd::sort_pairs(data),
            SorterKind::SampleSort => baselines::samplesort::sort_pairs(data),
            SorterKind::ParStdSort => baselines::stdsort::par_unstable_by_key(data, |r| r.0),
        }
    }

    /// Sorts `(u64 key, u32 value)` records (Morton codes).
    pub fn sort_codes(&self, data: &mut [(u64, u32)]) {
        match self {
            SorterKind::DtSort => dtsort::sort_pairs(data),
            SorterKind::DtSortPlain => dtsort::sort_pairs_with(data, &SortConfig::plain()),
            SorterKind::Plis => baselines::plis::sort_pairs(data),
            SorterKind::InplaceRadix => baselines::inplace_radix::sort_pairs(data),
            SorterKind::Lsd => baselines::lsd::sort_pairs(data),
            SorterKind::SampleSort => baselines::samplesort::sort_pairs(data),
            SorterKind::ParStdSort => baselines::stdsort::par_unstable_by_key(data, |r| r.0),
        }
    }
}

/// Runs `op` on a fresh copy of `input` `reps` times and returns the median
/// wall-clock seconds.  The paper reports the median of the last five of six
/// runs; with the default `reps = 3` we report the median of three, which is
/// the same estimator at laptop scale.
pub fn median_time_secs<T: Clone, F: FnMut(&mut Vec<T>)>(
    input: &[T],
    reps: usize,
    mut op: F,
) -> f64 {
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut copy = input.to_vec();
        let start = Instant::now();
        op(&mut copy);
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::dist::{generate_pairs_u32, Distribution};

    #[test]
    fn every_sorter_sorts_correctly() {
        let input = generate_pairs_u32(&Distribution::Zipfian { s: 1.0 }, 20_000, 1);
        let mut want: Vec<u32> = input.iter().map(|r| r.0).collect();
        want.sort_unstable();
        for kind in SorterKind::all() {
            let mut data = input.clone();
            kind.sort_pairs_u32(&mut data);
            let got: Vec<u32> = data.iter().map(|r| r.0).collect();
            assert_eq!(got, want, "{}", kind.name());
        }
    }

    #[test]
    fn stable_sorters_are_stable() {
        let input = generate_pairs_u32(&Distribution::Uniform { distinct: 50 }, 20_000, 2);
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);
        for kind in SorterKind::all().into_iter().filter(|k| k.is_stable()) {
            let mut data = input.clone();
            kind.sort_pairs_u32(&mut data);
            assert_eq!(data, want, "{} must be stable", kind.name());
        }
    }

    #[test]
    fn u64_and_code_entry_points_work() {
        let rng = parlay::random::Rng::new(3);
        let input64: Vec<(u64, u64)> = (0..10_000).map(|i| (rng.ith(i), i)).collect();
        let codes: Vec<(u64, u32)> = (0..10_000).map(|i| (rng.ith(i + 1), i as u32)).collect();
        for kind in SorterKind::all() {
            let mut a = input64.clone();
            kind.sort_pairs_u64(&mut a);
            assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "{}", kind.name());
            let mut b = codes.clone();
            kind.sort_codes(&mut b);
            assert!(b.windows(2).all(|w| w[0].0 <= w[1].0), "{}", kind.name());
        }
    }

    #[test]
    fn lineups_and_metadata() {
        assert_eq!(SorterKind::table3_lineup().len(), 6);
        assert_eq!(SorterKind::all().len(), 7);
        assert!(SorterKind::DtSort.is_stable());
        assert!(SorterKind::DtSort.is_integer_sort());
        assert!(!SorterKind::InplaceRadix.is_stable());
        assert!(!SorterKind::SampleSort.is_integer_sort());
        assert_eq!(SorterKind::DtSort.name(), "Ours(DTSort)");
    }

    #[test]
    fn median_time_runs_the_op() {
        let input = vec![3u32, 1, 2];
        let t = median_time_secs(&input, 3, |v| v.sort_unstable());
        assert!(t >= 0.0);
    }
}
