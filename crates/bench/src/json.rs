//! Machine-readable benchmark output shared by the `BENCH_*.json` writers.
//!
//! Every throughput/scalability binary appends its results to a JSON file
//! in the current directory so successive PRs can track the perf
//! trajectory; this module holds the one escaping + envelope writer they
//! all use, so the file format cannot silently diverge between benches.

use std::io::Write;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the standard bench envelope to `path`:
///
/// ```json
/// { "bench": <name>, <scalars...>, "results": [ <rows...> ] }
/// ```
///
/// `scalars` are emitted in order as raw JSON values (callers pass
/// pre-formatted numbers); each element of `rows` must be one complete
/// JSON object literal.  Logs the outcome to stdout/stderr like every
/// bench binary always has.
pub fn write_bench_json(path: &str, bench: &str, scalars: &[(&str, String)], rows: &[String]) {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench)));
    for (key, value) in scalars {
        body.push_str(&format!("  \"{}\": {},\n", json_escape(key), value));
    }
    body.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("    ");
        body.push_str(row);
        body.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ]\n}\n");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn envelope_is_valid_shape() {
        let dir = std::env::temp_dir().join(format!("pisort-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_bench_json(
            path.to_str().unwrap(),
            "demo",
            &[("n", "5".to_string())],
            &[r#"{"x": 1}"#.to_string(), r#"{"x": 2}"#.to_string()],
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\": \"demo\""));
        assert!(body.contains("\"n\": 5"));
        assert!(body.contains("{\"x\": 1},"));
        assert!(body.ends_with("  ]\n}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
