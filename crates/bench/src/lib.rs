//! # bench — shared infrastructure of the evaluation harness
//!
//! Each table and figure of the paper has a dedicated binary under
//! `src/bin/`; this library holds what they share: the registry of sorting
//! algorithms (one per column of the paper's Table 2/3), timing and
//! formatting helpers, and a small command-line parser so every binary can
//! be scaled with `--n`, `--reps`, `--threads` and `--bits`.

pub mod cli;
pub mod experiments;
pub mod json;
pub mod obs_support;
pub mod runner;
pub mod table;

pub use cli::Args;
pub use json::{json_escape, write_bench_json};
pub use obs_support::{obs_json_fields, write_obs_artifacts, ObsPhaseDeltas, ObsProbe};
pub use runner::{median_time_secs, SorterKind};
pub use table::{format_row, geo_mean, print_heatmap_cell, Table};
