//! Criterion micro-benchmarks of the algorithmic components: the stable
//! blocked counting sort (Step 2), the parallel merge baseline, the in-place
//! dovetail merge (Alg. 3), the sampling step, and the parallel primitives
//! (scan, reduce, reverse) they are built from.
//!
//! Run with `cargo bench -p bench --bench components`.

use criterion::{criterion_group, criterion_main, Criterion};
use dtsort::config::SortConfig;
use parlay::random::Rng;
use std::time::Duration;

const N: usize = 500_000;

fn keys(n: usize, seed: u64) -> Vec<(u64, u32)> {
    let rng = Rng::new(seed);
    (0..n).map(|i| (rng.ith(i as u64), i as u32)).collect()
}

fn bench_counting_sort(c: &mut Criterion) {
    let input = keys(N, 1);
    let mut group = c.benchmark_group("counting_sort");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &buckets in &[16usize, 256, 4096] {
        group.bench_function(format!("{buckets}_buckets"), |b| {
            b.iter_batched(
                || (input.clone(), vec![(0u64, 0u32); N]),
                |(src, mut dst)| {
                    parlay::counting_sort::counting_sort_by(&src, &mut dst, buckets, |r| {
                        (r.0 % buckets as u64) as usize
                    })
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let rng = Rng::new(2);
    let mut a: Vec<(u64, u32)> = (0..N).map(|i| (rng.ith(i as u64), i as u32)).collect();
    let mut bb: Vec<(u64, u32)> = (0..N)
        .map(|i| (rng.fork(1).ith(i as u64), i as u32))
        .collect();
    a.sort_unstable();
    bb.sort_unstable();
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("parallel_merge", |b| {
        b.iter_batched(
            || vec![(0u64, 0u32); 2 * N],
            |mut out| parlay::merge::par_merge_into(&a, &bb, &mut out, &|x, y| x.0 < y.0),
            criterion::BatchSize::LargeInput,
        )
    });
    // Dovetail merge of a zone with one huge heavy bucket.
    let light: Vec<(u64, u32)> = a.clone();
    let heavy: Vec<(u64, u32)> = vec![(a[N / 2].0 | 1, 7); N];
    group.bench_function("dovetail_merge_in_place", |b| {
        b.iter_batched(
            || {
                let mut zone = light.clone();
                zone.extend_from_slice(&heavy);
                zone
            },
            |mut zone| {
                dtsort::dtmerge::dovetail_merge_in_place(&mut zone, N, &[N], &|r: &(u64, u32)| r.0)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let input = keys(N, 3);
    let cfg = SortConfig::default();
    let mut group = c.benchmark_group("sampling");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("sample_and_detect", |b| {
        b.iter(|| {
            dtsort::sampling::sample_and_detect(input.len(), |i| input[i].0, 10, &cfg, Rng::new(9))
        })
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("parlay_primitives");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let v: Vec<usize> = (0..N).map(|i| i % 13).collect();
    group.bench_function("scan_exclusive", |b| {
        b.iter_batched(
            || v.clone(),
            |mut x| parlay::scan::scan_exclusive_in_place(&mut x),
            criterion::BatchSize::LargeInput,
        )
    });
    let data: Vec<u64> = (0..N as u64).collect();
    group.bench_function("par_max", |b| {
        b.iter(|| parlay::reduce::par_max(&data, |&x| x))
    });
    group.bench_function("par_reverse", |b| {
        b.iter_batched(
            || data.clone(),
            |mut x| parlay::flip::par_reverse(&mut x),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_counting_sort,
    bench_merge,
    bench_sampling,
    bench_primitives
);
criterion_main!(benches);
