//! Criterion benchmark behind **Table 4**: the graph-transpose and
//! Morton-sort applications with DovetailSort versus the strongest
//! baselines.
//!
//! Run with `cargo bench -p bench --bench applications`.

use bench::SorterKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use workloads::graphs::{knn_like_graph, power_law_graph, Csr};
use workloads::points::{varden_points_2d, VardenConfig};

fn bench_transpose(c: &mut Criterion) {
    let graphs = vec![
        ("power_law", power_law_graph(50_000, 500_000, 1.2, 1)),
        ("knn_like", knn_like_graph(60_000, 8, 2)),
    ];
    let sorters = [SorterKind::DtSort, SorterKind::Plis, SorterKind::SampleSort];
    let mut group = c.benchmark_group("table4_transpose");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, edges) in &graphs {
        let g = Csr::from_unsorted_edges(edges.num_vertices, &edges.edges);
        for sorter in sorters {
            group.bench_with_input(BenchmarkId::new(sorter.name(), label), &g, |b, g| {
                b.iter(|| apps::transpose_with_sorter(g, |e| sorter.sort_pairs_u32(e)))
            });
        }
    }
    group.finish();
}

fn bench_morton(c: &mut Criterion) {
    let pts = varden_points_2d(300_000, &VardenConfig::default(), 3);
    let sorters = [SorterKind::DtSort, SorterKind::Plis, SorterKind::SampleSort];
    let mut group = c.benchmark_group("table4_morton");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for sorter in sorters {
        group.bench_with_input(
            BenchmarkId::new(sorter.name(), "varden_2d"),
            &pts,
            |b, pts| {
                b.iter(|| apps::morton::morton_sort_2d_with(pts, |codes| sorter.sort_codes(codes)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transpose, bench_morton);
criterion_main!(benches);
