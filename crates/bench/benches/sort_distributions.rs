//! Criterion benchmark behind **Table 3 / Fig. 1**: every sorting algorithm
//! on representative synthetic distributions, 32-bit and 64-bit keys.
//!
//! Run with `cargo bench -p bench --bench sort_distributions`.
//! The input size is intentionally modest (Criterion repeats each
//! measurement many times); use the `table3` binary for paper-scale runs.

use bench::SorterKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use workloads::dist::{generate_pairs_u32, generate_pairs_u64, Distribution};

const N: usize = 200_000;

fn bench_distributions_32(c: &mut Criterion) {
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Exponential { lambda: 10.0 },
        Distribution::Zipfian { s: 1.2 },
        Distribution::BitExponential { t: 100.0 },
    ];
    let mut group = c.benchmark_group("table3_32bit");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for dist in &instances {
        let input = generate_pairs_u32(dist, N, 42);
        for sorter in SorterKind::table3_lineup() {
            group.bench_with_input(
                BenchmarkId::new(sorter.name(), dist.label()),
                &input,
                |b, input| {
                    b.iter_batched(
                        || input.clone(),
                        |mut data| sorter.sort_pairs_u32(&mut data),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_distributions_64(c: &mut Criterion) {
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.5 },
        Distribution::BitExponential { t: 30.0 },
    ];
    let mut group = c.benchmark_group("table3_64bit");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for dist in &instances {
        let input = generate_pairs_u64(dist, N, 43);
        for sorter in SorterKind::table3_lineup() {
            group.bench_with_input(
                BenchmarkId::new(sorter.name(), dist.label()),
                &input,
                |b, input| {
                    b.iter_batched(
                        || input.clone(),
                        |mut data| sorter.sort_pairs_u64(&mut data),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distributions_32, bench_distributions_64);
criterion_main!(benches);
