//! Criterion benchmark behind **Fig. 4**: the ablation studies.
//!
//! * Fig. 4(a)(b): DovetailSort with and without heavy-key detection.
//! * Fig. 4(c)(d): the merge-strategy comparison (DTMerge across buffers,
//!   the faithful in-place Alg. 3, the PLMerge baseline, and the merge-free
//!   lower bound).
//!
//! Run with `cargo bench -p bench --bench merge_strategies`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtsort::{MergeStrategy, SortConfig};
use std::time::Duration;
use workloads::dist::{generate_pairs_u32, Distribution};

const N: usize = 200_000;

fn bench_heavy_detection(c: &mut Criterion) {
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Zipfian { s: 1.5 },
        Distribution::BitExponential { t: 300.0 },
    ];
    let mut group = c.benchmark_group("fig4ab_heavy_detection");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for dist in &instances {
        let input = generate_pairs_u32(dist, N, 42);
        for (label, cfg) in [
            ("DTSort", SortConfig::default()),
            ("Plain", SortConfig::plain()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, dist.label()), &input, |b, input| {
                b.iter_batched(
                    || input.clone(),
                    |mut data| dtsort::sort_pairs_with(&mut data, &cfg),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_merge_strategies(c: &mut Criterion) {
    let instances = vec![
        Distribution::Uniform { distinct: 1_000 },
        Distribution::Zipfian { s: 1.5 },
        Distribution::BitExponential { t: 300.0 },
    ];
    let strategies = [
        ("DTMerge", MergeStrategy::Dovetail),
        ("DTMerge_inplace", MergeStrategy::DovetailInPlace),
        ("PLMerge", MergeStrategy::ParallelMerge),
        ("NoMerge", MergeStrategy::Skip),
    ];
    let mut group = c.benchmark_group("fig4cd_merge_strategies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for dist in &instances {
        let input = generate_pairs_u32(dist, N, 43);
        for (label, strategy) in strategies {
            let cfg = SortConfig {
                merge_strategy: strategy,
                ..SortConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(label, dist.label()), &input, |b, input| {
                b.iter_batched(
                    || input.clone(),
                    |mut data| dtsort::sort_pairs_with(&mut data, &cfg),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_heavy_detection, bench_merge_strategies);
criterion_main!(benches);
