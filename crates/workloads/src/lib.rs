//! # workloads — input generators for the DovetailSort evaluation
//!
//! Section 6 of the paper evaluates the sorting algorithms on four synthetic
//! key distributions (Uniform-μ, Exponential-λ, Zipfian-s and the
//! adversarial Bit-Exponential-t), on real-world graphs (for the graph
//! transpose application) and on real-world / Varden-generated point sets
//! (for the Morton sort application).
//!
//! This crate regenerates all of them synthetically and deterministically:
//!
//! * [`dist`] — the four key distributions with the paper's exact parameter
//!   grids ([`dist::paper_instances`], [`dist::bexp_instances`]).
//! * [`zipf`] — a bounded Zipf sampler (rejection inversion).
//! * [`graphs`] — directed-graph generators whose in-degree skew mimics the
//!   social/web graphs (power law) and the k-NN graph (near-uniform) used in
//!   Table 4, plus a CSR representation.
//! * [`points`] — 2D/3D point-cloud generators including a Varden-style
//!   variable-density generator, used by the Morton-sort experiments.
//! * [`strings`] — deterministic variable-length string payloads paired
//!   with the key distributions, for the streaming sorter's and group-by's
//!   `VarValue` paths.
//!
//! All generators take an explicit seed and are deterministic, so every
//! experiment in `EXPERIMENTS.md` is exactly reproducible.

pub mod batches;
pub mod dist;
pub mod graphs;
pub mod points;
pub mod strings;
pub mod zipf;

pub use batches::{batches_u32, BatchStream};
pub use dist::{
    bexp_instances, generate_keys, generate_pairs_u32, generate_pairs_u64, paper_instances,
    Distribution,
};
pub use graphs::{Csr, EdgeList};
pub use points::{Point2, Point3};
pub use strings::{
    generate_string_pairs, generate_weblog_records, payload_for, session_key, weblog_line,
    StringBatchStream,
};
pub use zipf::ZipfSampler;
