//! Deterministic variable-length string payloads for the streaming
//! scenarios.
//!
//! The streaming sorter and group-by now spill variable-length values
//! (`String` / `Vec<u8>`); these generators pair the paper's key
//! distributions with deterministic string payloads so those paths can be
//! exercised (and benchmarked) exactly like the pod-value paths.
//!
//! Each payload is a pure function of `(seed, global index)`: a short
//! index tag followed by pseudo-random ASCII filler whose length is drawn
//! uniformly from `[min_len, max_len]`.  The tag makes every payload
//! distinct, so byte-identical-output assertions (e.g. the thread-count
//! determinism matrix) are as strict as possible.

use crate::batches::BatchStream;
use crate::dist::Distribution;
use parlay::random::Rng;

const FILLER: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-._~";

/// The deterministic payload of record `index`: `"v{index:08x}:"` followed
/// by filler, with total filler length drawn uniformly from
/// `[min_len, max_len]`.
pub fn payload_for(seed: u64, index: u64, min_len: usize, max_len: usize) -> String {
    let rng = Rng::new(seed ^ 0x7061_796C_6F61_6421).fork(index);
    let span = max_len.saturating_sub(min_len) as u64 + 1;
    let len = min_len + rng.ith_in(0, span) as usize;
    let mut out = String::with_capacity(11 + len);
    out.push('v');
    out.push_str(&format!("{index:08x}:"));
    for j in 0..len {
        out.push(FILLER[rng.ith_in(1 + j as u64, FILLER.len() as u64) as usize] as char);
    }
    out
}

/// Lazy iterator over batches of `(u64 key, String payload)` records:
/// keys follow `dist` exactly as [`BatchStream`] generates them, payloads
/// come from [`payload_for`] on the global record index.
#[derive(Debug, Clone)]
pub struct StringBatchStream {
    inner: BatchStream,
    seed: u64,
    min_len: usize,
    max_len: usize,
}

impl StringBatchStream {
    /// A stream of `n` records of `bits`-wide keys with payloads of
    /// `[min_len, max_len]` filler bytes, delivered in batches of at most
    /// `batch_size` records.
    pub fn new(
        dist: &Distribution,
        n: usize,
        bits: u32,
        batch_size: usize,
        seed: u64,
        min_len: usize,
        max_len: usize,
    ) -> Self {
        assert!(min_len <= max_len, "min_len must not exceed max_len");
        Self {
            inner: BatchStream::new(dist, n, bits, batch_size, seed),
            seed,
            min_len,
            max_len,
        }
    }

    /// Total records not yet delivered.
    pub fn remaining(&self) -> usize {
        self.inner.remaining()
    }
}

impl Iterator for StringBatchStream {
    type Item = Vec<(u64, String)>;

    fn next(&mut self) -> Option<Vec<(u64, String)>> {
        let batch = self.inner.next()?;
        Some(
            batch
                .into_iter()
                .map(|(k, index)| (k, payload_for(self.seed, index, self.min_len, self.max_len)))
                .collect(),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// HTTP methods of the synthetic web log, weighted toward GET.
const METHODS: [&str; 8] = ["GET", "GET", "GET", "GET", "GET", "POST", "PUT", "DELETE"];
const SECTIONS: [&str; 6] = ["browse", "search", "cart", "account", "api/v2", "static"];

/// The *session key* of one web-log record: the distribution-drawn `key`
/// identifies a visitor, and all of a visitor's hits share one key string.
///
/// The format is deliberately prefix-heavy —
/// `"site-{key%20:02}.example.com/sess-{key:016x}"` — so that (a) many
/// distinct sessions collide in their first 8 bytes, exercising the
/// string-key tie-break of the streaming engines, and (b) spilled runs of
/// such keys compress well, making this the reference workload for the
/// delta-LZ spill encoding.
pub fn session_key(key: u64) -> String {
    format!("site-{:02}.example.com/sess-{key:016x}", key % 20)
}

/// The deterministic log-line payload of record `index`: method, path,
/// status and byte count, all pure functions of `(seed, index)`.
pub fn weblog_line(seed: u64, index: u64) -> String {
    let rng = Rng::new(seed ^ 0x7765_626C_6F67_2121).fork(index);
    let method = METHODS[rng.ith_in(0, METHODS.len() as u64) as usize];
    let section = SECTIONS[rng.ith_in(1, SECTIONS.len() as u64) as usize];
    let page = rng.ith_in(2, 10_000);
    let status = if rng.ith_in(3, 50) == 0 { 404 } else { 200 };
    let bytes = 128 + rng.ith_in(4, 64 << 10);
    format!("{method} /{section}/p{page:04} {status} {bytes} r{index:08x}")
}

/// A synthetic web log for the sessionization scenario: `n` records of
/// `(session key, log line)`, with visitors drawn from `dist` (Zipfian
/// visitors model the usual traffic skew) over `bits`-wide ids.  Grouping
/// by the string session key and aggregating the lines *is* the
/// sessionization job the streaming group-by runs in the benchmarks.
pub fn generate_weblog_records(
    dist: &Distribution,
    n: usize,
    bits: u32,
    seed: u64,
) -> Vec<(String, String)> {
    BatchStream::new(dist, n, bits, n.max(1), seed)
        .flatten()
        .map(|(k, index)| (session_key(k), weblog_line(seed, index)))
        .collect()
}

/// One-shot variant of [`StringBatchStream`]: all `n` records at once.
pub fn generate_string_pairs(
    dist: &Distribution,
    n: usize,
    bits: u32,
    seed: u64,
    min_len: usize,
    max_len: usize,
) -> Vec<(u64, String)> {
    StringBatchStream::new(dist, n, bits, n.max(1), seed, min_len, max_len)
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_and_seed_sensitive() {
        let a = payload_for(7, 42, 10, 50);
        let b = payload_for(7, 42, 10, 50);
        let c = payload_for(8, 42, 10, 50);
        let d = payload_for(7, 43, 10, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn payload_lengths_stay_in_range_and_vary() {
        let lens: Vec<usize> = (0..500u64)
            .map(|i| payload_for(1, i, 5, 40).len() - 10)
            .collect();
        assert!(
            lens.iter().all(|&l| (5..=40).contains(&l)),
            "lens: {lens:?}"
        );
        assert!(lens.iter().any(|&l| l != lens[0]), "lengths must vary");
        // Zero-width span is allowed (all-equal lengths).
        assert_eq!(payload_for(1, 0, 8, 8).len(), 18);
    }

    #[test]
    fn payloads_embed_the_index_and_are_distinct() {
        let p = payload_for(3, 0xABCD, 4, 8);
        assert!(p.starts_with("v0000abcd:"), "payload: {p}");
        let mut seen: Vec<String> = (0..1000).map(|i| payload_for(3, i, 0, 4)).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 1000, "index tag makes payloads distinct");
    }

    #[test]
    fn string_batches_cover_n_records_deterministically() {
        let dist = Distribution::Zipfian { s: 1.2 };
        let a: Vec<Vec<(u64, String)>> =
            StringBatchStream::new(&dist, 5000, 32, 512, 9, 4, 64).collect();
        let b: Vec<Vec<(u64, String)>> =
            StringBatchStream::new(&dist, 5000, 32, 512, 9, 4, 64).collect();
        assert_eq!(a, b);
        let flat: Vec<(u64, String)> = a.into_iter().flatten().collect();
        assert_eq!(flat.len(), 5000);
        // Keys must match the pod-value batch generator exactly.
        let keys: Vec<u64> = BatchStream::new(&dist, 5000, 32, 512, 9)
            .flatten()
            .map(|(k, _)| k)
            .collect();
        assert!(flat.iter().map(|(k, _)| *k).eq(keys));
    }

    #[test]
    fn weblog_records_are_deterministic_and_session_keyed() {
        let dist = Distribution::Zipfian { s: 1.2 };
        let a = generate_weblog_records(&dist, 2000, 32, 11);
        let b = generate_weblog_records(&dist, 2000, 32, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        // Session keys follow the pod-value key stream exactly.
        let keys: Vec<u64> = BatchStream::new(&dist, 2000, 32, 2000, 11)
            .flatten()
            .map(|(k, _)| k)
            .collect();
        assert!(a
            .iter()
            .map(|(k, _)| k.clone())
            .eq(keys.iter().map(|&k| session_key(k))));
        // Zipfian visitors repeat: sessions must group multiple hits.
        let distinct: std::collections::HashSet<&String> = a.iter().map(|(k, _)| k).collect();
        assert!(distinct.len() < a.len(), "sessions must repeat");
        // Every key shares the prefix-heavy shape; log lines are distinct
        // (the r{index} tag) and well-formed.
        assert!(a
            .iter()
            .all(|(k, _)| k.starts_with("site-") && k.contains("/sess-")));
        let mut lines: Vec<&String> = a.iter().map(|(_, v)| v).collect();
        lines.sort();
        lines.dedup();
        assert_eq!(lines.len(), 2000, "index tag makes lines distinct");
        assert!(a.iter().all(|(_, v)| v.split(' ').count() == 5));
    }

    #[test]
    fn one_shot_matches_batched() {
        let dist = Distribution::Uniform { distinct: 100 };
        let one = generate_string_pairs(&dist, 1000, 32, 5, 0, 32);
        assert_eq!(one.len(), 1000);
        assert!(one
            .iter()
            .enumerate()
            .all(|(i, (_, v))| { v.starts_with(&format!("v{i:08x}:")) }));
    }
}
