//! Point-cloud generators for the Morton-sort application
//! (paper Section 6.2, Table 4).
//!
//! The paper sorts the z-values (Morton codes) of real point sets (GeoLife,
//! Cosmo50, OpenStreetMap) and of synthetic sets produced by the *Varden*
//! generator, which creates points with strongly varying densities.  The
//! property that matters for the sorting workload is the spatial density
//! skew: dense clusters produce many points whose Morton codes share long
//! prefixes (and many exact duplicates after quantization), while uniform
//! clouds produce near-distinct codes.  The generators here reproduce both
//! regimes.

use parlay::par::parallel_for;
use parlay::random::Rng;
use parlay::slice::UnsafeSliceCell;

/// A 2-dimensional point with coordinates quantized to `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Point2 {
    pub x: u32,
    pub y: u32,
}

/// A 3-dimensional point with coordinates quantized to `u32`
/// (only the low 21 bits are used when interleaving into a 64-bit z-value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Point3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

/// Uniformly random 2D points over the full coordinate range.
pub fn uniform_points_2d(n: usize, seed: u64) -> Vec<Point2> {
    let rng = Rng::new(seed);
    let mut pts = vec![Point2::default(); n];
    let cell = UnsafeSliceCell::new(&mut pts);
    parallel_for(0, n, |i| {
        let p = Point2 {
            x: rng.ith(2 * i as u64) as u32,
            y: rng.ith(2 * i as u64 + 1) as u32,
        };
        unsafe { cell.write(i, p) };
    });
    pts
}

/// Uniformly random 3D points (21 significant bits per coordinate).
pub fn uniform_points_3d(n: usize, seed: u64) -> Vec<Point3> {
    let rng = Rng::new(seed);
    let mask = (1u32 << 21) - 1;
    let mut pts = vec![Point3::default(); n];
    let cell = UnsafeSliceCell::new(&mut pts);
    parallel_for(0, n, |i| {
        let p = Point3 {
            x: rng.ith(3 * i as u64) as u32 & mask,
            y: rng.ith(3 * i as u64 + 1) as u32 & mask,
            z: rng.ith(3 * i as u64 + 2) as u32 & mask,
        };
        unsafe { cell.write(i, p) };
    });
    pts
}

/// Parameters of the Varden-style variable-density generator.
#[derive(Debug, Clone)]
pub struct VardenConfig {
    /// Number of dense clusters.
    pub clusters: usize,
    /// Fraction of points placed inside clusters (the rest is background
    /// noise spread uniformly).
    pub clustered_fraction: f64,
    /// Cluster radius as a fraction of the coordinate range; clusters get
    /// geometrically varying radii around this value to vary the density.
    pub base_radius: f64,
    /// Quantization grid: coordinates are snapped to this many distinct
    /// values per axis, which (like real GPS / simulation data) produces
    /// exact duplicate points inside dense clusters.
    pub grid: u32,
}

impl Default for VardenConfig {
    fn default() -> Self {
        Self {
            clusters: 64,
            clustered_fraction: 0.9,
            base_radius: 0.002,
            grid: 1 << 20,
        }
    }
}

/// Varden-style 2D points: dense clusters of geometrically varying density
/// plus uniform background noise.
pub fn varden_points_2d(n: usize, cfg: &VardenConfig, seed: u64) -> Vec<Point2> {
    let rng = Rng::new(seed);
    let crng = rng.fork(1);
    let clusters = cfg.clusters.max(1);
    // Cluster centers and radii (radii shrink geometrically => density grows).
    let centers: Vec<(f64, f64, f64)> = (0..clusters)
        .map(|c| {
            let cx = crng.ith_f64(2 * c as u64);
            let cy = crng.ith_f64(2 * c as u64 + 1);
            let r = cfg.base_radius * 1.5f64.powi(-((c % 16) as i32));
            (cx, cy, r)
        })
        .collect();
    let scale = (cfg.grid - 1) as f64;
    let mut pts = vec![Point2::default(); n];
    let cell = UnsafeSliceCell::new(&mut pts);
    let centers_ref = &centers;
    parallel_for(0, n, |i| {
        let b = i as u64;
        let p = if rng.ith_f64(4 * b) < cfg.clustered_fraction {
            let c = rng.ith_in(4 * b + 1, clusters as u64) as usize;
            let (cx, cy, r) = centers_ref[c];
            let dx = (rng.ith_f64(4 * b + 2) - 0.5) * 2.0 * r;
            let dy = (rng.ith_f64(4 * b + 3) - 0.5) * 2.0 * r;
            ((cx + dx).clamp(0.0, 1.0), (cy + dy).clamp(0.0, 1.0))
        } else {
            (rng.ith_f64(4 * b + 2), rng.ith_f64(4 * b + 3))
        };
        let q = Point2 {
            x: (p.0 * scale) as u32,
            y: (p.1 * scale) as u32,
        };
        unsafe { cell.write(i, q) };
    });
    pts
}

/// Varden-style 3D points.
pub fn varden_points_3d(n: usize, cfg: &VardenConfig, seed: u64) -> Vec<Point3> {
    let rng = Rng::new(seed);
    let crng = rng.fork(2);
    let clusters = cfg.clusters.max(1);
    let centers: Vec<(f64, f64, f64, f64)> = (0..clusters)
        .map(|c| {
            let cx = crng.ith_f64(3 * c as u64);
            let cy = crng.ith_f64(3 * c as u64 + 1);
            let cz = crng.ith_f64(3 * c as u64 + 2);
            let r = cfg.base_radius * 1.5f64.powi(-((c % 16) as i32));
            (cx, cy, cz, r)
        })
        .collect();
    let grid = cfg.grid.min(1 << 21);
    let scale = (grid - 1) as f64;
    let mut pts = vec![Point3::default(); n];
    let cell = UnsafeSliceCell::new(&mut pts);
    let centers_ref = &centers;
    parallel_for(0, n, |i| {
        let b = i as u64;
        let p = if rng.ith_f64(5 * b) < cfg.clustered_fraction {
            let c = rng.ith_in(5 * b + 1, clusters as u64) as usize;
            let (cx, cy, cz, r) = centers_ref[c];
            (
                (cx + (rng.ith_f64(5 * b + 2) - 0.5) * 2.0 * r).clamp(0.0, 1.0),
                (cy + (rng.ith_f64(5 * b + 3) - 0.5) * 2.0 * r).clamp(0.0, 1.0),
                (cz + (rng.ith_f64(5 * b + 4) - 0.5) * 2.0 * r).clamp(0.0, 1.0),
            )
        } else {
            (
                rng.ith_f64(5 * b + 2),
                rng.ith_f64(5 * b + 3),
                rng.ith_f64(5 * b + 4),
            )
        };
        let q = Point3 {
            x: (p.0 * scale) as u32,
            y: (p.1 * scale) as u32,
            z: (p.2 * scale) as u32,
        };
        unsafe { cell.write(i, q) };
    });
    pts
}

/// GPS-trace-like 2D points (GeoLife / OSM stand-in): a small number of
/// "roads" (random walks) along which points are densely and repeatedly
/// sampled, producing very heavy coordinate duplication.
pub fn trace_points_2d(n: usize, walks: usize, seed: u64) -> Vec<Point2> {
    let rng = Rng::new(seed);
    let walks = walks.max(1);
    let steps_per_walk = (n / walks).max(1);
    // Precompute walk paths coarsely (quantized to a street grid).
    let grid = 1u32 << 16;
    let path_rng = rng.fork(3);
    let mut pts = vec![Point2::default(); n];
    let cell = UnsafeSliceCell::new(&mut pts);
    parallel_for(0, n, |i| {
        let w = i / steps_per_walk;
        let step = (i % steps_per_walk) as u64;
        let wr = path_rng.fork(w as u64);
        // Each walk consists of segments of 64 samples anchored at a grid
        // cell; most samples within a segment are "stationary" (exactly the
        // anchor, like a GPS device sitting at a traffic light), the rest
        // advance along the segment direction.  This yields the heavy
        // coordinate duplication observed in real GPS traces.
        let seg = step / 64;
        let x0 = wr.ith_in(2 * seg, grid as u64) as i64;
        let y0 = wr.ith_in(2 * seg + 1, grid as u64) as i64;
        let stationary = wr.ith_f64(10_000 + step) < 0.7;
        let (x, y) = if stationary {
            (x0, y0)
        } else {
            let dx = (wr.ith_in(20_000 + seg, 5) as i64) - 2;
            let dy = (wr.ith_in(30_000 + seg, 5) as i64) - 2;
            (
                (x0 + dx * (step % 64) as i64).rem_euclid(grid as i64),
                (y0 + dy * (step % 64) as i64).rem_euclid(grid as i64),
            )
        };
        unsafe {
            cell.write(
                i,
                Point2 {
                    x: (x as u32) << 8,
                    y: (y as u32) << 8,
                },
            )
        };
    });
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_points_are_mostly_distinct() {
        let pts = uniform_points_2d(50_000, 1);
        let set: HashSet<(u32, u32)> = pts.iter().map(|p| (p.x, p.y)).collect();
        assert!(set.len() > 49_000);
        let pts3 = uniform_points_3d(10_000, 2);
        assert!(pts3
            .iter()
            .all(|p| p.x < (1 << 21) && p.y < (1 << 21) && p.z < (1 << 21)));
    }

    #[test]
    fn varden_points_have_density_skew() {
        let pts = varden_points_2d(100_000, &VardenConfig::default(), 3);
        assert_eq!(pts.len(), 100_000);
        // Count points in a coarse grid; the densest cell should hold far
        // more than the uniform expectation.
        let mut counts = std::collections::HashMap::new();
        for p in &pts {
            *counts.entry((p.x >> 14, p.y >> 14)).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = 100_000.0 / counts.len() as f64;
        assert!(max as f64 > 10.0 * avg, "max cell {max}, avg {avg}");
    }

    #[test]
    fn varden_3d_in_range_and_deterministic() {
        let cfg = VardenConfig::default();
        let a = varden_points_3d(20_000, &cfg, 4);
        let b = varden_points_3d(20_000, &cfg, 4);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|p| p.x < (1 << 21) && p.y < (1 << 21) && p.z < (1 << 21)));
    }

    #[test]
    fn trace_points_have_heavy_duplicates() {
        let pts = trace_points_2d(100_000, 200, 5);
        let set: HashSet<(u32, u32)> = pts.iter().map(|p| (p.x, p.y)).collect();
        assert!(
            set.len() < pts.len() / 2,
            "trace points should contain many duplicates: {} distinct of {}",
            set.len(),
            pts.len()
        );
    }
}
