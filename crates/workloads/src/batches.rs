//! Streaming batch generators over the paper's key distributions.
//!
//! The streaming sorter (`crates/stream`) consumes records in pushed
//! batches; these generators produce such batches lazily, in bounded
//! memory, over any [`Distribution`].  Each batch is generated with a seed
//! forked from the base seed and the batch index, so a stream is fully
//! deterministic for a fixed `(seed, batch_size)` — note that changing the
//! batch size changes the generated key sequence, not just its chunking.
//! Values record the *global* record index, so stability of a downstream
//! sort can be checked exactly as with the one-shot generators.

use crate::dist::{generate_keys, Distribution};

/// Lazy iterator over batches of `(u64 key, u64 global-index)` records.
#[derive(Debug, Clone)]
pub struct BatchStream {
    dist: Distribution,
    bits: u32,
    seed: u64,
    batch_size: usize,
    remaining: usize,
    next_index: u64,
    next_batch: u64,
}

impl BatchStream {
    /// A stream of `n` records of `bits`-wide keys (32 or 64), delivered in
    /// batches of at most `batch_size` records.
    pub fn new(dist: &Distribution, n: usize, bits: u32, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        Self {
            dist: dist.clone(),
            bits,
            seed,
            batch_size,
            remaining: n,
            next_index: 0,
            next_batch: 0,
        }
    }

    /// Total records not yet delivered.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for BatchStream {
    type Item = Vec<(u64, u64)>;

    fn next(&mut self) -> Option<Vec<(u64, u64)>> {
        if self.remaining == 0 {
            return None;
        }
        let take = self.batch_size.min(self.remaining);
        // Forked per-batch seed: deterministic for a fixed (seed, batch_size).
        let batch_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.next_batch);
        let keys = generate_keys(&self.dist, take, self.bits, batch_seed);
        let base = self.next_index;
        let batch: Vec<(u64, u64)> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, base + i as u64))
            .collect();
        self.remaining -= take;
        self.next_index += take as u64;
        self.next_batch += 1;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let batches = self.remaining.div_ceil(self.batch_size);
        (batches, Some(batches))
    }
}

/// [`BatchStream`] narrowed to `(u32 key, u32 global-index)` records
/// (the common evaluation shape).  Requires 32-bit keys and fewer than
/// `2^32` records.
pub fn batches_u32(
    dist: &Distribution,
    n: usize,
    batch_size: usize,
    seed: u64,
) -> impl Iterator<Item = Vec<(u32, u32)>> {
    assert!(n < (1usize << 32), "u32 values cannot index 2^32 records");
    BatchStream::new(dist, n, 32, batch_size, seed).map(|batch| {
        batch
            .into_iter()
            .map(|(k, v)| (k as u32, v as u32))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_n_records_with_global_indices() {
        let dist = Distribution::Zipfian { s: 1.0 };
        let n = 10_000;
        let all: Vec<(u64, u64)> = BatchStream::new(&dist, n, 32, 1024, 1).flatten().collect();
        assert_eq!(all.len(), n);
        assert!(all.iter().enumerate().all(|(i, &(_, v))| v == i as u64));
    }

    #[test]
    fn batch_sizes_are_respected() {
        let dist = Distribution::Uniform { distinct: 100 };
        let sizes: Vec<usize> = BatchStream::new(&dist, 2500, 32, 1000, 2)
            .map(|b| b.len())
            .collect();
        assert_eq!(sizes, vec![1000, 1000, 500]);
    }

    #[test]
    fn deterministic_in_seed_and_sensitive_to_it() {
        let dist = Distribution::Exponential { lambda: 5.0 };
        let a: Vec<Vec<(u64, u64)>> = BatchStream::new(&dist, 5000, 64, 512, 7).collect();
        let b: Vec<Vec<(u64, u64)>> = BatchStream::new(&dist, 5000, 64, 512, 7).collect();
        let c: Vec<Vec<(u64, u64)>> = BatchStream::new(&dist, 5000, 64, 512, 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn u32_batches_fit_width() {
        let dist = Distribution::Uniform { distinct: 1 << 30 };
        let all: Vec<(u32, u32)> = batches_u32(&dist, 5000, 777, 3).flatten().collect();
        assert_eq!(all.len(), 5000);
        assert!(all.iter().enumerate().all(|(i, &(_, v))| v == i as u32));
    }

    #[test]
    fn size_hint_counts_batches() {
        let dist = Distribution::Uniform { distinct: 10 };
        let s = BatchStream::new(&dist, 2500, 32, 1000, 1);
        assert_eq!(s.size_hint(), (3, Some(3)));
        assert_eq!(s.remaining(), 2500);
    }
}
