//! Bounded Zipf(N, s) sampling by rejection inversion.
//!
//! The paper's Zipf-s workloads draw keys whose frequencies follow a Zipfian
//! law with exponent `s ∈ {0.6, 0.8, 1, 1.2, 1.5}` (Section 6).  We use the
//! rejection-inversion method of Hörmann and Derflinger, which samples from
//! a bounded Zipf distribution in O(1) expected time for any `s > 0` without
//! precomputing the harmonic normalization table.

/// A sampler for the Zipf distribution over ranks `1..=n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme
    // (Hörmann & Derflinger; same constants as Apache Commons' sampler).
    h_x1: f64,
    h_n: f64,
    accept_threshold: f64,
    dense: bool,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `1..=n` (n ≥ 1) with exponent `s ≥ 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "ZipfSampler requires at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and non-negative"
        );
        let dense = s == 0.0;
        let h_x1 = Self::h_static(1.5, s) - 1.0;
        let h_n = Self::h_static(n as f64 + 0.5, s);
        let accept_threshold = 2.0 - Self::h_inv_static(Self::h_static(2.5, s) - 2f64.powf(-s), s);
        Self {
            n,
            s,
            h_x1,
            h_n,
            accept_threshold,
            dense,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    // H(x) = integral of x^-s: (x^(1-s) - 1)/(1-s) for s != 1, ln(x) for s = 1.
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h_inv_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            let t = (x * (1.0 - s)).max(-1.0);
            (1.0 + t).powf(1.0 / (1.0 - s))
        }
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(x, self.s)
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(x, self.s)
    }

    /// Draws a rank in `1..=n` from two independent uniform(0,1) variates.
    ///
    /// The deterministic workload generators feed hash-derived uniforms so
    /// that generation is reproducible and order-independent.
    pub fn sample(&self, u1: f64, u2: f64) -> u64 {
        if self.n == 1 {
            return 1;
        }
        if self.dense {
            // s = 0 is the uniform distribution over ranks.
            return 1 + (u1 * self.n as f64) as u64;
        }
        // Rejection inversion; expected < 2 iterations.  The two provided
        // uniforms seed the first attempt; further attempts (rare) derive new
        // uniforms by remixing.
        let mut u = u1.max(f64::MIN_POSITIVE);
        let mut v = u2;
        for _ in 0..64 {
            let ux = self.h_n + u * (self.h_x1 - self.h_n);
            let x = self.h_inv(ux);
            let k = x.round().clamp(1.0, self.n as f64);
            // Acceptance test (Hörmann & Derflinger): accept when the
            // rounded rank is close enough to the continuous sample, or when
            // the mapped uniform falls above the rejection boundary.
            if k - x <= self.accept_threshold || ux >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64;
            }
            // Remix and retry.
            u = remix(u, v);
            v = remix(v, u);
        }
        // Practically unreachable; fall back to rank 1 (the most likely rank).
        1
    }

    /// Expected relative frequency of rank `k` (unnormalized `k^-s`),
    /// exposed for tests and for the analytical checks in the harness.
    pub fn weight(&self, k: u64) -> f64 {
        (k as f64).powf(-self.s)
    }
}

fn remix(a: f64, b: f64) -> f64 {
    let bits = a.to_bits() ^ b.to_bits().rotate_left(17);
    let h = parlay::random::hash64(bits);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    fn draw_many(n: u64, s: f64, count: usize, seed: u64) -> Vec<u64> {
        let z = ZipfSampler::new(n, s);
        let rng = Rng::new(seed);
        (0..count)
            .map(|i| z.sample(rng.ith_f64(2 * i as u64), rng.ith_f64(2 * i as u64 + 1)))
            .collect()
    }

    #[test]
    fn samples_in_range() {
        for &s in &[0.0, 0.6, 1.0, 1.5, 2.5] {
            let v = draw_many(1000, s, 20_000, 1);
            assert!(v.iter().all(|&x| (1..=1000).contains(&x)), "s = {s}");
        }
    }

    #[test]
    fn rank_one_dominates_for_large_s() {
        let v = draw_many(10_000, 1.5, 50_000, 2);
        let ones = v.iter().filter(|&&x| x == 1).count() as f64 / v.len() as f64;
        // For s = 1.5 over 10k ranks, rank 1 has probability ~ 1/ζ(1.5) ≈ 0.38.
        assert!(ones > 0.25, "rank-1 frequency {ones}");
    }

    #[test]
    fn small_s_is_spread_out() {
        let v = draw_many(10_000, 0.6, 50_000, 3);
        let ones = v.iter().filter(|&&x| x == 1).count() as f64 / v.len() as f64;
        assert!(ones < 0.05, "rank-1 frequency {ones} too high for s=0.6");
        // Should hit many distinct ranks.
        let distinct: std::collections::HashSet<u64> = v.iter().copied().collect();
        assert!(
            distinct.len() > 3_000,
            "only {} distinct ranks",
            distinct.len()
        );
    }

    #[test]
    fn frequency_ratio_roughly_follows_power_law() {
        // For s = 1, P(1)/P(2) should be about 2.
        let v = draw_many(100_000, 1.0, 400_000, 4);
        let c1 = v.iter().filter(|&&x| x == 1).count() as f64;
        let c2 = v.iter().filter(|&&x| x == 2).count() as f64;
        let ratio = c1 / c2.max(1.0);
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_rank_and_uniform_exponent() {
        let z = ZipfSampler::new(1, 1.2);
        assert_eq!(z.sample(0.3, 0.7), 1);
        let z = ZipfSampler::new(50, 0.0);
        let rng = Rng::new(5);
        let v: Vec<u64> = (0..5000)
            .map(|i| z.sample(rng.ith_f64(i), rng.ith_f64(i + 10_000)))
            .collect();
        let distinct: std::collections::HashSet<u64> = v.iter().copied().collect();
        assert!(distinct.len() >= 45);
        assert_eq!(z.num_ranks(), 50);
        assert!(z.weight(1) >= z.weight(2));
    }
}
