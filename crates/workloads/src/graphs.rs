//! Synthetic directed graphs for the graph-transpose application
//! (paper Section 6.2, Table 4).
//!
//! The paper transposes five real-world graphs (soc-LiveJournal, Twitter,
//! Cosmo50, sd_arc, ClueWeb).  What matters for the sorting workload is the
//! *in-degree distribution of the destination vertices* — social networks and
//! web graphs are heavily skewed (many duplicate keys), while the k-NN graph
//! Cosmo50 is near-regular.  The generators here reproduce those two shapes:
//!
//! * [`power_law_graph`] — destination vertices drawn from a Zipf
//!   distribution (skewed in-degrees, social/web-graph stand-in);
//! * [`knn_like_graph`] — every vertex points to `k` near-neighbours
//!   (near-uniform in-degrees, Cosmo50 stand-in);
//! * [`uniform_graph`] — destinations drawn uniformly (light duplicates).

use crate::zipf::ZipfSampler;
use parlay::par::parallel_for;
use parlay::random::Rng;
use parlay::slice::UnsafeSliceCell;

/// An edge list of a directed graph on vertices `0..num_vertices`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Directed edges `(from, to)`.
    pub edges: Vec<(u32, u32)>,
}

/// A compressed-sparse-row representation of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes the out-neighbours of `v` in
    /// `targets`.  Length `num_vertices + 1`.
    pub offsets: Vec<usize>,
    /// Concatenated out-neighbour lists.
    pub targets: Vec<u32>,
}

impl Csr {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Builds a CSR from an edge list (edges must already be grouped by
    /// source; use [`Csr::from_unsorted_edges`] otherwise).
    pub fn from_sorted_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut offsets = vec![0usize; num_vertices + 1];
        for &(u, _) in edges {
            offsets[u as usize + 1] += 1;
        }
        for v in 0..num_vertices {
            offsets[v + 1] += offsets[v];
        }
        let targets = edges.iter().map(|&(_, v)| v).collect();
        Self { offsets, targets }
    }

    /// Builds a CSR from an arbitrary edge list by stably sorting it by
    /// source vertex first.
    pub fn from_unsorted_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut sorted = edges.to_vec();
        dtsort_free_sort(&mut sorted);
        Self::from_sorted_edges(num_vertices, &sorted)
    }

    /// Flattens the CSR back into an edge list `(source, target)`.
    pub fn to_edges(&self) -> Vec<(u32, u32)> {
        let n = self.num_vertices();
        let mut edges = vec![(0u32, 0u32); self.num_edges()];
        let cell = UnsafeSliceCell::new(&mut edges);
        let offsets = &self.offsets;
        let targets = &self.targets;
        parallel_for(0, n, |v| {
            for (j, &t) in targets[offsets[v]..offsets[v + 1]].iter().enumerate() {
                unsafe { cell.write(offsets[v] + j, (v as u32, t)) };
            }
        });
        edges
    }
}

/// Dependency-free stable sort of an edge list by source vertex, used only
/// for CSR construction inside this crate (the applications crate provides
/// the measured sorting-based transpose).
fn dtsort_free_sort(edges: &mut [(u32, u32)]) {
    edges.sort_by_key(|&(u, _)| u);
}

/// A directed graph whose edge destinations follow a Zipf distribution —
/// the stand-in for social networks and web graphs (skewed in-degrees).
pub fn power_law_graph(num_vertices: usize, num_edges: usize, s: f64, seed: u64) -> EdgeList {
    let rng = Rng::new(seed);
    let sampler = ZipfSampler::new(num_vertices.max(1) as u64, s);
    let mut edges = vec![(0u32, 0u32); num_edges];
    let cell = UnsafeSliceCell::new(&mut edges);
    parallel_for(0, num_edges, |i| {
        let from = rng.ith_in(3 * i as u64, num_vertices as u64) as u32;
        // Zipf rank 1 is the most popular destination; permute ranks with a
        // hash so popular vertices are spread over the id space like in real
        // graphs.
        let rank = sampler.sample(rng.ith_f64(3 * i as u64 + 1), rng.ith_f64(3 * i as u64 + 2)) - 1;
        let to = (parlay::random::hash64(rank) % num_vertices as u64) as u32;
        unsafe { cell.write(i, (from, to)) };
    });
    EdgeList {
        num_vertices,
        edges,
    }
}

/// A directed graph where every vertex has `k` out-edges to vertices with
/// nearby ids — the stand-in for the k-NN graph Cosmo50 (near-uniform
/// in-degrees).
pub fn knn_like_graph(num_vertices: usize, k: usize, seed: u64) -> EdgeList {
    let rng = Rng::new(seed);
    let num_edges = num_vertices * k;
    let mut edges = vec![(0u32, 0u32); num_edges];
    let window = (8 * k).max(16) as u64;
    let cell = UnsafeSliceCell::new(&mut edges);
    parallel_for(0, num_vertices, |v| {
        for j in 0..k {
            let idx = v * k + j;
            // Neighbour at a small random offset (wrapping), mimicking
            // spatial locality of a k-NN graph.
            let offset = rng.ith_in(idx as u64, window) as i64 - (window / 2) as i64;
            let to = (v as i64 + offset).rem_euclid(num_vertices as i64) as u32;
            unsafe { cell.write(idx, (v as u32, to)) };
        }
    });
    EdgeList {
        num_vertices,
        edges,
    }
}

/// A directed graph with uniformly random destinations.
pub fn uniform_graph(num_vertices: usize, num_edges: usize, seed: u64) -> EdgeList {
    let rng = Rng::new(seed);
    let mut edges = vec![(0u32, 0u32); num_edges];
    let cell = UnsafeSliceCell::new(&mut edges);
    parallel_for(0, num_edges, |i| {
        let from = rng.ith_in(2 * i as u64, num_vertices as u64) as u32;
        let to = rng.ith_in(2 * i as u64 + 1, num_vertices as u64) as u32;
        unsafe { cell.write(i, (from, to)) };
    });
    EdgeList {
        num_vertices,
        edges,
    }
}

/// The Table 4 graph-transpose instances (scaled-down synthetic stand-ins
/// for LJ / TW / CM / SD / CW), as `(label, edge list)` pairs.
///
/// `scale` multiplies the instance sizes; `scale = 1.0` produces graphs of a
/// few million edges that run comfortably on a laptop.
pub fn table4_graphs(scale: f64, seed: u64) -> Vec<(String, EdgeList)> {
    let sz = |x: f64| ((x * scale) as usize).max(1000);
    vec![
        (
            "LJ-like (social)".to_string(),
            power_law_graph(sz(500_000.0), sz(4_000_000.0), 1.1, seed),
        ),
        (
            "TW-like (social)".to_string(),
            power_law_graph(sz(1_000_000.0), sz(8_000_000.0), 1.3, seed + 1),
        ),
        (
            "CM-like (kNN)".to_string(),
            knn_like_graph(sz(1_000_000.0), 8, seed + 2),
        ),
        (
            "SD-like (web)".to_string(),
            power_law_graph(sz(1_500_000.0), sz(10_000_000.0), 1.2, seed + 3),
        ),
        (
            "CW-like (web)".to_string(),
            power_law_graph(sz(2_000_000.0), sz(16_000_000.0), 1.25, seed + 4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn power_law_graph_has_skewed_in_degrees() {
        let g = power_law_graph(10_000, 200_000, 1.2, 1);
        assert_eq!(g.edges.len(), 200_000);
        assert!(g
            .edges
            .iter()
            .all(|&(u, v)| (u as usize) < 10_000 && (v as usize) < 10_000));
        let mut indeg: HashMap<u32, usize> = HashMap::new();
        for &(_, v) in &g.edges {
            *indeg.entry(v).or_default() += 1;
        }
        let max_deg = *indeg.values().max().unwrap();
        let avg = 200_000.0 / indeg.len() as f64;
        assert!(
            max_deg as f64 > 20.0 * avg,
            "max in-degree {max_deg} not skewed vs avg {avg}"
        );
    }

    #[test]
    fn knn_graph_has_regular_degrees() {
        let g = knn_like_graph(5_000, 8, 2);
        assert_eq!(g.edges.len(), 40_000);
        let mut outdeg = vec![0usize; 5_000];
        let mut indeg = vec![0usize; 5_000];
        for &(u, v) in &g.edges {
            outdeg[u as usize] += 1;
            indeg[v as usize] += 1;
        }
        assert!(outdeg.iter().all(|&d| d == 8));
        let max_in = *indeg.iter().max().unwrap();
        assert!(
            max_in < 80,
            "kNN-like in-degrees should be near-uniform, max {max_in}"
        );
    }

    #[test]
    fn csr_round_trip() {
        let g = uniform_graph(1_000, 20_000, 3);
        let csr = Csr::from_unsorted_edges(g.num_vertices, &g.edges);
        assert_eq!(csr.num_vertices(), 1_000);
        assert_eq!(csr.num_edges(), 20_000);
        let mut back = csr.to_edges();
        let mut want = g.edges.clone();
        back.sort_unstable();
        want.sort_unstable();
        assert_eq!(back, want);
        // Degrees sum to edge count.
        let total: usize = (0..csr.num_vertices()).map(|v| csr.degree(v)).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn csr_neighbors_are_grouped_by_source() {
        let edges = vec![(2u32, 5u32), (0, 1), (2, 3), (1, 0), (0, 9)];
        let csr = Csr::from_unsorted_edges(10, &edges);
        assert_eq!(csr.neighbors(0), &[1, 9]);
        assert_eq!(csr.neighbors(1), &[0]);
        assert_eq!(csr.neighbors(2), &[5, 3]);
        assert!(csr.neighbors(3).is_empty());
    }

    #[test]
    fn table4_instances_exist_and_are_deterministic() {
        let a = table4_graphs(0.01, 7);
        let b = table4_graphs(0.01, 7);
        assert_eq!(a.len(), 5);
        for ((la, ga), (lb, gb)) in a.iter().zip(b.iter()) {
            assert_eq!(la, lb);
            assert_eq!(ga, gb);
            assert!(!ga.edges.is_empty());
        }
    }
}
