//! The synthetic key distributions of the paper's Section 6.
//!
//! * **Unif-μ** — keys drawn uniformly from `μ` distinct values, then spread
//!   over the full `[0, 2^bits)` range (order-preservingly) as the paper
//!   does ("we map the keys to larger ranges up to 2^32 or 2^64").
//! * **Exp-λ** — key frequencies follow an exponential distribution with
//!   rate `10^-5 · λ`; the integer part of the variate is the (pre-spread)
//!   key.
//! * **Zipf-s** — key frequencies follow a Zipf law with exponent `s`.
//! * **BExp-t** — the paper's adversarial *Bit-Exponential* distribution:
//!   every bit of the key is 0 with probability `1/t` and 1 otherwise, which
//!   makes MSD zone sizes extremely uneven and mixes heavy and light keys in
//!   nearly every subproblem.
//!
//! All generators are parallel (over records) and deterministic in the seed.

use crate::zipf::ZipfSampler;
use parlay::par::parallel_for;
use parlay::random::Rng;
use parlay::slice::UnsafeSliceCell;

/// A key distribution from the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Uniform over `distinct` values (the paper's Unif-μ).
    Uniform { distinct: u64 },
    /// Exponential with rate `1e-5 · lambda` (the paper's Exp-λ).
    Exponential { lambda: f64 },
    /// Zipfian with exponent `s` (the paper's Zipf-s).
    Zipfian { s: f64 },
    /// Bit-exponential with parameter `t` (the paper's BExp-t).
    BitExponential { t: f64 },
}

impl Distribution {
    /// Short instance label used in tables (e.g. `"Unif-1e7"`, `"Zipf-1.2"`).
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform { distinct } => {
                if *distinct >= 1000 {
                    format!("Unif-1e{}", (*distinct as f64).log10().round() as u32)
                } else {
                    format!("Unif-{distinct}")
                }
            }
            Distribution::Exponential { lambda } => format!("Exp-{lambda}"),
            Distribution::Zipfian { s } => format!("Zipf-{s}"),
            Distribution::BitExponential { t } => format!("BExp-{t}"),
        }
    }
}

/// Spreads a small key order-preservingly over the full `bits`-bit range.
///
/// The paper maps the standard distributions onto the full 32/64-bit key
/// range so that the sorts exercise all digit levels; multiplying by a fixed
/// stride preserves both the order and the duplicate structure.
fn spread(key: u64, max_key: u64, bits: u32) -> u64 {
    let range_top = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    if max_key == 0 {
        return 0;
    }
    let stride = range_top / (max_key + 1);
    key * stride.max(1)
}

/// Generates `n` keys of width `bits` (32 or 64) from the distribution.
pub fn generate_keys(dist: &Distribution, n: usize, bits: u32, seed: u64) -> Vec<u64> {
    assert!(
        bits == 32 || bits == 64,
        "the evaluation uses 32- or 64-bit keys"
    );
    let rng = Rng::new(seed);
    let mut out = vec![0u64; n];
    let cell = UnsafeSliceCell::new(&mut out);
    match dist {
        Distribution::Uniform { distinct } => {
            let distinct = (*distinct).max(1);
            parallel_for(0, n, |i| {
                let v = rng.ith_in(i as u64, distinct);
                unsafe { cell.write(i, spread(v, distinct - 1, bits)) };
            });
        }
        Distribution::Exponential { lambda } => {
            let rate = 1e-5 * lambda.max(1e-12);
            // The largest key we expect (quantile 1 - 1/(100 n)); used for
            // spreading over the full bit range.
            let max_x = ((n as f64 * 100.0).ln() / rate).ceil() as u64;
            parallel_for(0, n, |i| {
                let u = rng.ith_f64(i as u64).max(f64::MIN_POSITIVE);
                let x = (-u.ln() / rate).round() as u64;
                let x = x.min(max_x);
                unsafe { cell.write(i, spread(x, max_x, bits)) };
            });
        }
        Distribution::Zipfian { s } => {
            // The paper draws Zipfian ranks over a universe comparable to n.
            let ranks = (n as u64).max(2);
            let sampler = ZipfSampler::new(ranks, *s);
            parallel_for(0, n, |i| {
                let u1 = rng.ith_f64(2 * i as u64);
                let u2 = rng.ith_f64(2 * i as u64 + 1);
                let rank = sampler.sample(u1, u2) - 1;
                unsafe { cell.write(i, spread(rank, ranks - 1, bits)) };
            });
        }
        Distribution::BitExponential { t } => {
            let p_zero = (1.0 / t.max(1.0)).clamp(0.0, 1.0);
            parallel_for(0, n, |i| {
                let mut key = 0u64;
                let base = (i as u64) * 64;
                for b in 0..bits {
                    let bit = if rng.ith_f64(base + b as u64) < p_zero {
                        0
                    } else {
                        1
                    };
                    key |= bit << b;
                }
                unsafe { cell.write(i, key) };
            });
        }
    }
    out
}

/// Generates `(32-bit key, 32-bit value)` records; values record the input
/// index so stability can be checked.
pub fn generate_pairs_u32(dist: &Distribution, n: usize, seed: u64) -> Vec<(u32, u32)> {
    generate_keys(dist, n, 32, seed)
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k as u32, i as u32))
        .collect()
}

/// Generates `(64-bit key, 64-bit value)` records.
pub fn generate_pairs_u64(dist: &Distribution, n: usize, seed: u64) -> Vec<(u64, u64)> {
    generate_keys(dist, n, 64, seed)
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i as u64))
        .collect()
}

/// The 15 standard-distribution instances of Table 3 / Fig. 1, in the
/// paper's order (5 Uniform, 5 Exponential, 5 Zipfian).
pub fn paper_instances() -> Vec<Distribution> {
    let mut v = Vec::new();
    for &mu in &[1e9 as u64, 1e7 as u64, 1e5 as u64, 1e3 as u64, 10] {
        v.push(Distribution::Uniform { distinct: mu });
    }
    for &l in &[1.0, 2.0, 5.0, 7.0, 10.0] {
        v.push(Distribution::Exponential { lambda: l });
    }
    for &s in &[0.6, 0.8, 1.0, 1.2, 1.5] {
        v.push(Distribution::Zipfian { s });
    }
    v
}

/// The 5 adversarial Bit-Exponential instances of Table 3.
pub fn bexp_instances() -> Vec<Distribution> {
    [10.0, 30.0, 50.0, 100.0, 300.0]
        .iter()
        .map(|&t| Distribution::BitExponential { t })
        .collect()
}

/// The 8 representative instances used by the Fig. 4(a)(b) ablation
/// (lightest and heaviest case of each distribution family).
pub fn ablation_instances() -> Vec<Distribution> {
    vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Exponential { lambda: 1.0 },
        Distribution::Exponential { lambda: 10.0 },
        Distribution::Zipfian { s: 0.6 },
        Distribution::Zipfian { s: 1.5 },
        Distribution::BitExponential { t: 10.0 },
        Distribution::BitExponential { t: 300.0 },
    ]
}

/// The 7 representative instances used by the Fig. 4(c)(d) merge ablation.
pub fn merge_ablation_instances() -> Vec<Distribution> {
    vec![
        Distribution::Uniform { distinct: 1_000 },
        Distribution::Exponential { lambda: 1.0 },
        Distribution::Exponential { lambda: 10.0 },
        Distribution::Zipfian { s: 0.6 },
        Distribution::Zipfian { s: 1.5 },
        Distribution::BitExponential { t: 10.0 },
        Distribution::BitExponential { t: 300.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_has_requested_distinct_count() {
        let keys = generate_keys(&Distribution::Uniform { distinct: 10 }, 50_000, 32, 1);
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), 10);
        assert!(keys.iter().all(|&k| k <= u32::MAX as u64));
    }

    #[test]
    fn uniform_large_universe_is_mostly_distinct() {
        let n = 50_000;
        let keys = generate_keys(&Distribution::Uniform { distinct: 1 << 40 }, n, 64, 2);
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        assert!(distinct.len() > n * 99 / 100);
    }

    #[test]
    fn exponential_is_skewed_toward_small_keys() {
        let keys = generate_keys(&Distribution::Exponential { lambda: 10.0 }, 50_000, 32, 3);
        // With rate 1e-4, the median of the underlying variate is ~6931, and
        // the most frequent single keys are the small ones; at least the key
        // multiset must contain many duplicates.
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        assert!(
            distinct.len() < keys.len(),
            "exponential input should contain duplicates"
        );
    }

    #[test]
    fn exponential_lighter_lambda_has_more_distinct_keys() {
        let n = 100_000;
        let d1: HashSet<u64> = generate_keys(&Distribution::Exponential { lambda: 1.0 }, n, 32, 4)
            .into_iter()
            .collect();
        let d10: HashSet<u64> =
            generate_keys(&Distribution::Exponential { lambda: 10.0 }, n, 32, 4)
                .into_iter()
                .collect();
        assert!(
            d1.len() > d10.len(),
            "λ=1 ({}) should be lighter than λ=10 ({})",
            d1.len(),
            d10.len()
        );
    }

    #[test]
    fn zipf_heavier_exponent_has_fewer_distinct_keys() {
        let n = 100_000;
        let d06: HashSet<u64> = generate_keys(&Distribution::Zipfian { s: 0.6 }, n, 32, 5)
            .into_iter()
            .collect();
        let d15: HashSet<u64> = generate_keys(&Distribution::Zipfian { s: 1.5 }, n, 32, 5)
            .into_iter()
            .collect();
        assert!(d06.len() > 10 * d15.len(), "{} vs {}", d06.len(), d15.len());
    }

    #[test]
    fn bexp_bits_are_mostly_ones_for_large_t() {
        let keys = generate_keys(&Distribution::BitExponential { t: 300.0 }, 5_000, 32, 6);
        let total_zero_bits: u32 = keys.iter().map(|&k| 32 - (k as u32).count_ones()).sum();
        let frac = total_zero_bits as f64 / (keys.len() as f64 * 32.0);
        assert!(
            (frac - 1.0 / 300.0).abs() < 0.005,
            "zero-bit fraction {frac}"
        );
    }

    #[test]
    fn bexp_smaller_t_has_more_zero_bits() {
        let k10 = generate_keys(&Distribution::BitExponential { t: 10.0 }, 5_000, 32, 7);
        let k300 = generate_keys(&Distribution::BitExponential { t: 300.0 }, 5_000, 32, 7);
        let zeros = |ks: &[u64]| -> u32 { ks.iter().map(|&k| 32 - (k as u32).count_ones()).sum() };
        assert!(zeros(&k10) > zeros(&k300) * 5);
    }

    #[test]
    fn keys_fit_requested_width() {
        for dist in paper_instances().iter().chain(bexp_instances().iter()) {
            let keys = generate_keys(dist, 2_000, 32, 8);
            assert!(
                keys.iter().all(|&k| k <= u32::MAX as u64),
                "{:?} produced >32-bit keys",
                dist
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let d = Distribution::Zipfian { s: 1.2 };
        assert_eq!(
            generate_keys(&d, 10_000, 64, 9),
            generate_keys(&d, 10_000, 64, 9)
        );
        assert_ne!(
            generate_keys(&d, 10_000, 64, 9),
            generate_keys(&d, 10_000, 64, 10)
        );
    }

    #[test]
    fn pairs_record_input_index() {
        let pairs = generate_pairs_u32(&Distribution::Uniform { distinct: 100 }, 1_000, 11);
        assert_eq!(pairs.len(), 1_000);
        assert!(pairs.iter().enumerate().all(|(i, &(_, v))| v as usize == i));
        let pairs64 = generate_pairs_u64(&Distribution::Uniform { distinct: 100 }, 500, 11);
        assert!(pairs64
            .iter()
            .enumerate()
            .all(|(i, &(_, v))| v as usize == i));
    }

    #[test]
    fn instance_lists_match_paper_counts() {
        assert_eq!(paper_instances().len(), 15);
        assert_eq!(bexp_instances().len(), 5);
        assert_eq!(ablation_instances().len(), 8);
        assert_eq!(merge_ablation_instances().len(), 7);
        assert_eq!(
            Distribution::Uniform {
                distinct: 10_000_000
            }
            .label(),
            "Unif-1e7"
        );
        assert_eq!(Distribution::Zipfian { s: 1.2 }.label(), "Zipf-1.2");
        assert_eq!(Distribution::Uniform { distinct: 10 }.label(), "Unif-10");
    }
}
