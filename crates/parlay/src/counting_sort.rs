//! Stable blocked parallel counting sort (paper Section 2.4 / Appendix B).
//!
//! This is the *distribution* primitive used by every MSD integer sort in the
//! paper, including DovetailSort's Step 2.  The input is split into blocks;
//! each block counts how many of its records fall into each bucket (the
//! *counting matrix*), a column-major exclusive scan over the matrix yields
//! the scatter offset of every (block, bucket) pair, and a final parallel
//! pass scatters every record to its destination.  Because blocks are
//! processed in input order and each block scatters its records in input
//! order, the sort is stable.
//!
//! Work `O(n + B·b)` where `B` is the number of blocks and `b` the number of
//! buckets; span `O(b + log n)` — exactly the bounds quoted in the paper.

use crate::par::parallel_for;
use crate::slice::UnsafeSliceCell;

/// Result of planning a counting sort: block layout plus bucket boundaries.
#[derive(Debug, Clone)]
pub struct CountingSortPlan {
    /// Exclusive prefix of bucket sizes; `bucket_offsets[k]..bucket_offsets[k+1]`
    /// is the range of bucket `k` in the output.  Length `num_buckets + 1`.
    pub bucket_offsets: Vec<usize>,
}

impl CountingSortPlan {
    /// Number of buckets in the plan.
    pub fn num_buckets(&self) -> usize {
        self.bucket_offsets.len().saturating_sub(1)
    }

    /// The half-open output range of bucket `k`.
    pub fn bucket_range(&self, k: usize) -> std::ops::Range<usize> {
        self.bucket_offsets[k]..self.bucket_offsets[k + 1]
    }

    /// Size of bucket `k`.
    pub fn bucket_len(&self, k: usize) -> usize {
        self.bucket_offsets[k + 1] - self.bucket_offsets[k]
    }
}

/// Chooses the number of blocks for an input of `n` records and `b` buckets.
///
/// Following Appendix B, we keep the counting matrix (`blocks × buckets`
/// machine words) small enough to stay cache-resident while still exposing
/// enough blocks for load balancing across the available threads.
fn choose_num_blocks(n: usize, num_buckets: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let threads = rayon::current_num_threads();
    // At least ~8 blocks per thread for balance, but never more blocks than
    // would make per-block work smaller than the bucket count (each block
    // must amortize its own histogram).
    let by_parallelism = threads * 8;
    let by_matrix = n / num_buckets.max(256) + 1;
    by_parallelism.min(by_matrix).clamp(1, n)
}

/// Stable parallel counting sort from `src` into `dst`.
///
/// `key(x)` must return a bucket id `< num_buckets` for every record.
/// Returns the plan holding the bucket boundaries in `dst`.
///
/// # Panics
/// Panics if `src.len() != dst.len()` or if a key is out of range
/// (debug builds; in release an out-of-range key leads to a panic via
/// indexing).
pub fn counting_sort_by<T, F>(
    src: &[T],
    dst: &mut [T],
    num_buckets: usize,
    key: F,
) -> CountingSortPlan
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    assert_eq!(
        src.len(),
        dst.len(),
        "counting_sort_by: src and dst must have equal length"
    );
    let n = src.len();
    if num_buckets == 0 {
        assert_eq!(n, 0, "counting_sort_by: zero buckets with nonempty input");
        return CountingSortPlan {
            bucket_offsets: vec![0],
        };
    }
    if n == 0 {
        return CountingSortPlan {
            bucket_offsets: vec![0; num_buckets + 1],
        };
    }

    let num_blocks = choose_num_blocks(n, num_buckets);
    let block_size = n.div_ceil(num_blocks);

    // Pass 1: per-block histograms, stored row-major: counts[block][bucket].
    let mut counts = vec![0usize; num_blocks * num_buckets];
    {
        let counts_cell = UnsafeSliceCell::new(&mut counts);
        let key = &key;
        parallel_for(0, num_blocks, |b| {
            let start = b * block_size;
            let end = ((b + 1) * block_size).min(n);
            let row = unsafe { counts_cell.slice_mut(b * num_buckets, num_buckets) };
            for rec in &src[start..end] {
                let k = key(rec);
                debug_assert!(k < num_buckets, "bucket id {k} out of range {num_buckets}");
                row[k] += 1;
            }
        });
    }

    // Pass 2: column-major exclusive scan over the counting matrix.  The
    // offset of (block b, bucket k) is: all records of buckets < k, plus the
    // records of bucket k in blocks < b.  The matrix is small (it was sized
    // to fit in cache) so a sequential scan keeps the span at O(B·b) <= O(n).
    let mut bucket_offsets = vec![0usize; num_buckets + 1];
    let mut running = 0usize;
    for k in 0..num_buckets {
        bucket_offsets[k] = running;
        for b in 0..num_blocks {
            let idx = b * num_buckets + k;
            let c = counts[idx];
            counts[idx] = running;
            running += c;
        }
    }
    bucket_offsets[num_buckets] = running;
    debug_assert_eq!(running, n, "counting matrix total must equal input size");

    // Pass 3: stable scatter.  Each block owns its row of offsets, so the
    // destination index sets of different blocks are disjoint.
    {
        let dst_cell = UnsafeSliceCell::new(dst);
        let counts_cell = UnsafeSliceCell::new(&mut counts);
        let key = &key;
        parallel_for(0, num_blocks, |b| {
            let start = b * block_size;
            let end = ((b + 1) * block_size).min(n);
            let row = unsafe { counts_cell.slice_mut(b * num_buckets, num_buckets) };
            for rec in &src[start..end] {
                let k = key(rec);
                let pos = row[k];
                row[k] += 1;
                unsafe { dst_cell.write(pos, *rec) };
            }
        });
    }

    CountingSortPlan { bucket_offsets }
}

/// Stable counting sort that leaves the result in `data`, using a freshly
/// allocated buffer internally.  Convenience wrapper for callers that do not
/// manage their own ping-pong buffers.
pub fn counting_sort_inplace_by<T, F>(
    data: &mut [T],
    num_buckets: usize,
    key: F,
) -> CountingSortPlan
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let mut tmp = data.to_vec();
    let plan = counting_sort_by(data, &mut tmp, num_buckets, key);
    data.copy_from_slice(&tmp);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Rng;

    fn check_stable_counting_sort(input: &[(u32, u32)], num_buckets: usize) {
        let mut dst = vec![(0u32, 0u32); input.len()];
        let plan = counting_sort_by(input, &mut dst, num_buckets, |&(k, _)| k as usize);
        // Reference: std stable sort by bucket id.
        let mut want = input.to_vec();
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(dst, want, "counting sort must equal a stable sort by key");
        // Bucket offsets must delimit the buckets.
        assert_eq!(plan.bucket_offsets.len(), num_buckets + 1);
        assert_eq!(*plan.bucket_offsets.last().unwrap(), input.len());
        for k in 0..num_buckets {
            for &(key, _) in &dst[plan.bucket_range(k)] {
                assert_eq!(key as usize, k);
            }
        }
    }

    #[test]
    fn random_input_is_stably_sorted() {
        let rng = Rng::new(1);
        let n = 100_000;
        let b = 64;
        let input: Vec<(u32, u32)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, b as u64) as u32, i as u32))
            .collect();
        check_stable_counting_sort(&input, b);
    }

    #[test]
    fn skewed_input() {
        let rng = Rng::new(2);
        let n = 50_000;
        let b = 16;
        // 90% of records in bucket 3.
        let input: Vec<(u32, u32)> = (0..n)
            .map(|i| {
                let k = if rng.ith_f64(i as u64) < 0.9 {
                    3
                } else {
                    rng.ith_in(i as u64, b as u64) as u32
                };
                (k, i as u32)
            })
            .collect();
        check_stable_counting_sort(&input, b);
    }

    #[test]
    fn empty_input_and_single_bucket() {
        let input: Vec<(u32, u32)> = vec![];
        let mut dst: Vec<(u32, u32)> = vec![];
        let plan = counting_sort_by(&input, &mut dst, 8, |&(k, _)| k as usize);
        assert_eq!(plan.bucket_offsets, vec![0; 9]);

        let input: Vec<(u32, u32)> = (0..1000).map(|i| (0, i)).collect();
        check_stable_counting_sort(&input, 1);
    }

    #[test]
    fn many_buckets_few_records() {
        let input: Vec<(u32, u32)> = vec![(999, 0), (0, 1), (500, 2), (999, 3)];
        check_stable_counting_sort(&input, 1000);
    }

    #[test]
    fn inplace_wrapper_matches() {
        let rng = Rng::new(3);
        let mut data: Vec<(u32, u32)> = (0..10_000)
            .map(|i| (rng.ith_in(i, 32) as u32, i as u32))
            .collect();
        let mut want = data.clone();
        want.sort_by_key(|&(k, _)| k);
        counting_sort_inplace_by(&mut data, 32, |&(k, _)| k as usize);
        assert_eq!(data, want);
    }

    #[test]
    fn plan_accessors() {
        let input: Vec<(u32, u32)> = vec![(1, 0), (1, 1), (3, 2)];
        let mut dst = vec![(0, 0); 3];
        let plan = counting_sort_by(&input, &mut dst, 4, |&(k, _)| k as usize);
        assert_eq!(plan.num_buckets(), 4);
        assert_eq!(plan.bucket_len(0), 0);
        assert_eq!(plan.bucket_len(1), 2);
        assert_eq!(plan.bucket_len(2), 0);
        assert_eq!(plan.bucket_len(3), 1);
        assert_eq!(plan.bucket_range(1), 0..2);
    }
}
