//! Parallel histogram over a small integer domain.
//!
//! The counting sort of Appendix B internally computes per-block histograms;
//! this module exposes the histogram itself as a standalone primitive (the
//! paper's Section 1 notes that counting sort — i.e. histogram + scatter —
//! is the method of choice when the key range is `o(n)`), plus a helper to
//! find the most frequent keys, which the harness uses to characterize
//! workloads.

use crate::par::parallel_for;
use crate::slice::UnsafeSliceCell;
use crate::DEFAULT_GRANULARITY;

/// Counts how many elements map to each value in `0..range`.
///
/// Parallel over blocks: each block accumulates a private histogram and the
/// block histograms are reduced at the end, so there is no contention on
/// shared counters.  Work `O(n + B·range)`, span `O(range + log n)`.
pub fn histogram<T, F>(data: &[T], range: usize, key: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = data.len();
    if range == 0 {
        assert_eq!(n, 0, "histogram: zero range with nonempty input");
        return Vec::new();
    }
    if n == 0 {
        return vec![0; range];
    }
    let block = DEFAULT_GRANULARITY.max(range / 4);
    let num_blocks = n.div_ceil(block);
    let mut partial = vec![0usize; num_blocks * range];
    {
        let cell = UnsafeSliceCell::new(&mut partial);
        let key = &key;
        parallel_for(0, num_blocks, |b| {
            let row = unsafe { cell.slice_mut(b * range, range) };
            let start = b * block;
            let end = ((b + 1) * block).min(n);
            for x in &data[start..end] {
                let k = key(x);
                debug_assert!(k < range);
                row[k] += 1;
            }
        });
    }
    // Reduce the block histograms column-wise (parallel over the range).
    let mut out = vec![0usize; range];
    {
        let out_cell = UnsafeSliceCell::new(&mut out);
        let partial_ref = &partial;
        parallel_for(0, range, |k| {
            let mut s = 0usize;
            for b in 0..num_blocks {
                s += partial_ref[b * range + k];
            }
            unsafe { out_cell.write(k, s) };
        });
    }
    out
}

/// Returns the `k` most frequent values (value, count), most frequent first,
/// breaking ties by smaller value.
pub fn top_k_frequent<T, F>(data: &[T], range: usize, k: usize, key: F) -> Vec<(usize, usize)>
where
    T: Sync,
    F: Fn(&T) -> usize + Sync,
{
    let hist = histogram(data, range, key);
    let mut pairs: Vec<(usize, usize)> = hist
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Rng;

    #[test]
    fn histogram_matches_sequential_count() {
        let rng = Rng::new(1);
        let data: Vec<u32> = (0..80_000).map(|i| rng.ith_in(i, 97) as u32).collect();
        let got = histogram(&data, 97, |&x| x as usize);
        let mut want = vec![0usize; 97];
        for &x in &data {
            want[x as usize] += 1;
        }
        assert_eq!(got, want);
        assert_eq!(got.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn histogram_empty_and_tiny() {
        let empty: Vec<u8> = vec![];
        assert_eq!(histogram(&empty, 5, |&x| x as usize), vec![0; 5]);
        assert!(histogram(&empty, 0, |&x| x as usize).is_empty());
        let one = vec![3u8];
        let h = histogram(&one, 10, |&x| x as usize);
        assert_eq!(h[3], 1);
        assert_eq!(h.iter().sum::<usize>(), 1);
    }

    #[test]
    fn top_k_finds_the_heavy_values() {
        let rng = Rng::new(2);
        // Value 7 gets ~50%, value 3 gets ~25%, the rest uniform.
        let data: Vec<u32> = (0..50_000)
            .map(|i| {
                let r = rng.ith_f64(i);
                if r < 0.5 {
                    7
                } else if r < 0.75 {
                    3
                } else {
                    rng.ith_in(i, 64) as u32
                }
            })
            .collect();
        let top = top_k_frequent(&data, 64, 2, |&x| x as usize);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 7);
        assert_eq!(top[1].0, 3);
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn top_k_more_than_distinct() {
        let data = vec![1u8, 1, 2];
        let top = top_k_frequent(&data, 4, 10, |&x| x as usize);
        assert_eq!(top, vec![(1, 2), (2, 1)]);
    }
}
