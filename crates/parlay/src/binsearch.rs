//! Binary search helpers (lower/upper bound).
//!
//! The dovetail merge (paper Alg. 3, line 1) binary-searches every heavy key
//! in the sorted light bucket to find its insertion point; these helpers
//! provide the `lower_bound`/`upper_bound` semantics of C++'s standard
//! library, which ParlayLib code relies on.

/// First index `i` such that `!(slice[i] < key)`, i.e. the first position
/// where `key` could be inserted while keeping the slice sorted (before any
/// equal elements).
pub fn lower_bound<T: Ord>(slice: &[T], key: &T) -> usize {
    lower_bound_by(slice, |x| x.cmp(key))
}

/// First index `i` such that `key < slice[i]` is false for all `j < i` and
/// true at `i`, i.e. the insertion point after any equal elements.
pub fn upper_bound<T: Ord>(slice: &[T], key: &T) -> usize {
    upper_bound_by(slice, |x| x.cmp(key))
}

/// Generic lower bound: first index whose element compares `>=` the target,
/// where `cmp(x)` returns the ordering of `x` relative to the target.
pub fn lower_bound_by<T, F: Fn(&T) -> std::cmp::Ordering>(slice: &[T], cmp: F) -> usize {
    let mut lo = 0usize;
    let mut len = slice.len();
    while len > 0 {
        let half = len / 2;
        let mid = lo + half;
        if cmp(&slice[mid]) == std::cmp::Ordering::Less {
            lo = mid + 1;
            len -= half + 1;
        } else {
            len = half;
        }
    }
    lo
}

/// Generic upper bound: first index whose element compares `>` the target.
pub fn upper_bound_by<T, F: Fn(&T) -> std::cmp::Ordering>(slice: &[T], cmp: F) -> usize {
    let mut lo = 0usize;
    let mut len = slice.len();
    while len > 0 {
        let half = len / 2;
        let mid = lo + half;
        if cmp(&slice[mid]) != std::cmp::Ordering::Greater {
            lo = mid + 1;
            len -= half + 1;
        } else {
            len = half;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_on_simple_slice() {
        let v = vec![1, 3, 3, 3, 5, 9];
        assert_eq!(lower_bound(&v, &3), 1);
        assert_eq!(upper_bound(&v, &3), 4);
        assert_eq!(lower_bound(&v, &0), 0);
        assert_eq!(upper_bound(&v, &0), 0);
        assert_eq!(lower_bound(&v, &10), 6);
        assert_eq!(upper_bound(&v, &10), 6);
        assert_eq!(lower_bound(&v, &4), 4);
        assert_eq!(upper_bound(&v, &4), 4);
    }

    #[test]
    fn empty_slice() {
        let v: Vec<u32> = vec![];
        assert_eq!(lower_bound(&v, &1), 0);
        assert_eq!(upper_bound(&v, &1), 0);
    }

    #[test]
    fn matches_std_partition_point_on_random_inputs() {
        let mut v: Vec<u32> = (0..5000)
            .map(|i| (i * 2654435761u64 % 997) as u32)
            .collect();
        v.sort_unstable();
        for probe in 0..1000u32 {
            let lb = lower_bound(&v, &probe);
            let ub = upper_bound(&v, &probe);
            assert_eq!(lb, v.partition_point(|&x| x < probe));
            assert_eq!(ub, v.partition_point(|&x| x <= probe));
            assert!(lb <= ub);
        }
    }

    #[test]
    fn all_equal_elements() {
        let v = vec![7u8; 100];
        assert_eq!(lower_bound(&v, &7), 0);
        assert_eq!(upper_bound(&v, &7), 100);
        assert_eq!(lower_bound(&v, &6), 0);
        assert_eq!(upper_bound(&v, &8), 100);
    }
}
