//! Parallel reductions.
//!
//! Work `O(n)`, span `O(log n)` with binary forking — the same bounds the
//! paper assumes for its "parallel reduce" (used e.g. to compute the maximum
//! key, an alternative to the overflow-bucket optimization of Section 5).

use crate::DEFAULT_GRANULARITY;

/// Generic parallel reduction with an associative combiner.
///
/// `identity` must be an identity element for `combine`, and `map` extracts
/// the value contributed by each element.
pub fn par_reduce<T, A, M, C>(data: &[T], identity: A, map: M, combine: C) -> A
where
    T: Sync,
    A: Send + Sync + Clone,
    M: Fn(&T) -> A + Sync,
    C: Fn(A, A) -> A + Sync,
{
    fn go<T, A, M, C>(data: &[T], identity: &A, map: &M, combine: &C) -> A
    where
        T: Sync,
        A: Send + Sync + Clone,
        M: Fn(&T) -> A + Sync,
        C: Fn(A, A) -> A + Sync,
    {
        if data.len() <= DEFAULT_GRANULARITY {
            let mut acc = identity.clone();
            for x in data {
                acc = combine(acc, map(x));
            }
            return acc;
        }
        let mid = data.len() / 2;
        let (l, r) = data.split_at(mid);
        let (a, b) = rayon::join(
            || go(l, identity, map, combine),
            || go(r, identity, map, combine),
        );
        combine(a, b)
    }
    go(data, &identity, &map, &combine)
}

/// Parallel sum of `map(x)` over the slice.
pub fn par_sum<T: Sync, M: Fn(&T) -> usize + Sync>(data: &[T], map: M) -> usize {
    par_reduce(data, 0usize, map, |a, b| a + b)
}

/// Parallel maximum of `map(x)` over the slice; `None` on an empty slice.
pub fn par_max<T, K, M>(data: &[T], map: M) -> Option<K>
where
    T: Sync,
    K: Ord + Send + Sync + Clone,
    M: Fn(&T) -> K + Sync,
{
    if data.is_empty() {
        return None;
    }
    let first = map(&data[0]);
    Some(par_reduce(data, first, map, |a, b| a.max(b)))
}

/// Parallel minimum of `map(x)` over the slice; `None` on an empty slice.
pub fn par_min<T, K, M>(data: &[T], map: M) -> Option<K>
where
    T: Sync,
    K: Ord + Send + Sync + Clone,
    M: Fn(&T) -> K + Sync,
{
    if data.is_empty() {
        return None;
    }
    let first = map(&data[0]);
    Some(par_reduce(data, first, map, |a, b| a.min(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (0..50_000).collect();
        let s = par_sum(&v, |&x| x as usize);
        assert_eq!(s, (0..50_000usize).sum());
    }

    #[test]
    fn max_and_min() {
        let v: Vec<i64> = (0..10_000).map(|i| (i * 37 % 9973) - 5000).collect();
        assert_eq!(par_max(&v, |&x| x), v.iter().copied().max());
        assert_eq!(par_min(&v, |&x| x), v.iter().copied().min());
    }

    #[test]
    fn empty_slices() {
        let v: Vec<u32> = vec![];
        assert_eq!(par_max(&v, |&x| x), None);
        assert_eq!(par_min(&v, |&x| x), None);
        assert_eq!(par_sum(&v, |&x| x as usize), 0);
    }

    #[test]
    fn generic_reduce_with_monoid() {
        // Count elements divisible by 3 via reduce.
        let v: Vec<u32> = (0..3000).collect();
        let count = par_reduce(&v, 0usize, |&x| usize::from(x % 3 == 0), |a, b| a + b);
        assert_eq!(count, 1000);
    }

    #[test]
    fn single_element() {
        let v = vec![7u8];
        assert_eq!(par_max(&v, |&x| x), Some(7));
        assert_eq!(par_min(&v, |&x| x), Some(7));
        assert_eq!(par_sum(&v, |&x| x as usize), 7);
    }
}
