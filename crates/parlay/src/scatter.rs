//! Stable parallel scatter primitives.
//!
//! A *scatter* distributes records into buckets by an arbitrary bucket-id
//! function — the same three-pass blocked machinery as the counting sort
//! ([`crate::counting_sort`]), but with no expectation that bucket ids are
//! order-related to the records.  Semisort-style consumers use it to route
//! records into **hashed** buckets: equal keys land together, but buckets
//! carry no range meaning, which is exactly the "grouped, not sorted"
//! contract.

use crate::counting_sort::{counting_sort_by, CountingSortPlan};
use crate::random::hash64;

/// Stable parallel scatter from `src` into `dst` by an arbitrary bucket id.
///
/// `id(x)` must return a bucket id `< num_buckets` for every record.
/// Records of the same bucket keep their input order.  Returns the plan
/// holding the bucket boundaries in `dst`.
///
/// # Panics
/// Panics if `src.len() != dst.len()`.
pub fn scatter_by<T, F>(src: &[T], dst: &mut [T], num_buckets: usize, id: F) -> CountingSortPlan
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    counting_sort_by(src, dst, num_buckets, id)
}

/// Stable parallel scatter into `2^log2_buckets` **hashed** buckets.
///
/// Every record's key is hashed ([`hash64`]) and the top `log2_buckets`
/// bits of the hash select the bucket, so equal keys share a bucket and
/// adversarially clustered key ranges still spread evenly.  Records of the
/// same bucket keep their input order.
///
/// # Panics
/// Panics if `src.len() != dst.len()` or `log2_buckets > 32`.
pub fn hash_scatter_into<T, F>(
    src: &[T],
    dst: &mut [T],
    log2_buckets: u32,
    key: F,
) -> CountingSortPlan
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    assert!(log2_buckets <= 32, "hash_scatter_into: too many buckets");
    let shift = 64 - log2_buckets;
    scatter_by(src, dst, 1usize << log2_buckets, |rec| {
        if log2_buckets == 0 {
            0
        } else {
            (hash64(key(rec)) >> shift) as usize
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Rng;
    use std::collections::HashMap;

    #[test]
    fn scatter_is_stable_permutation() {
        let rng = Rng::new(1);
        let input: Vec<(u32, u32)> = (0..40_000)
            .map(|i| (rng.ith_in(i, 97) as u32, i as u32))
            .collect();
        let mut dst = vec![(0u32, 0u32); input.len()];
        let plan = scatter_by(&input, &mut dst, 16, |&(k, _)| (k % 16) as usize);
        // Every bucket holds exactly the records mapping to it, in order.
        for b in 0..16 {
            let bucket = &dst[plan.bucket_range(b)];
            assert!(bucket.iter().all(|&(k, _)| (k % 16) as usize == b));
            assert!(bucket.windows(2).all(|w| w[0].1 < w[1].1), "stability");
        }
        assert_eq!(plan.bucket_offsets.last(), Some(&input.len()));
    }

    #[test]
    fn hash_scatter_groups_equal_keys() {
        let rng = Rng::new(2);
        let input: Vec<(u64, u32)> = (0..30_000).map(|i| (rng.ith_in(i, 50), i as u32)).collect();
        let mut dst = vec![(0u64, 0u32); input.len()];
        let plan = hash_scatter_into(&input, &mut dst, 4, |&(k, _)| k);
        // Each distinct key lands in exactly one bucket.
        let mut bucket_of: HashMap<u64, usize> = HashMap::new();
        for b in 0..plan.num_buckets() {
            for &(k, _) in &dst[plan.bucket_range(b)] {
                assert_eq!(*bucket_of.entry(k).or_insert(b), b, "key {k} split");
            }
        }
        assert_eq!(bucket_of.len(), 50);
    }

    #[test]
    fn hash_scatter_spreads_sequential_keys() {
        // Sequential keys would all share low bits; hashing must spread them.
        let input: Vec<u64> = (0..64_000).collect();
        let mut dst = vec![0u64; input.len()];
        let plan = hash_scatter_into(&input, &mut dst, 6, |&k| k);
        let max_bucket = (0..64).map(|b| plan.bucket_len(b)).max().unwrap();
        assert!(max_bucket < 4 * 1000, "largest bucket {max_bucket}");
    }

    #[test]
    fn zero_log2_buckets_and_empty_input() {
        let input = [5u64, 5, 7];
        let mut dst = [0u64; 3];
        let plan = hash_scatter_into(&input, &mut dst, 0, |&k| k);
        assert_eq!(plan.num_buckets(), 1);
        assert_eq!(dst, input);

        let empty: Vec<u64> = vec![];
        let mut dst: Vec<u64> = vec![];
        let plan = hash_scatter_into(&empty, &mut dst, 3, |&k| k);
        assert_eq!(plan.num_buckets(), 8);
        assert_eq!(plan.bucket_offsets, vec![0; 9]);
    }
}
