//! Parallel sampling utilities.
//!
//! DovetailSort's Step 1 (and the samplesort baselines) draw
//! `Θ(2^γ · log n)` uniformly random records from the input.  The indices are
//! produced by the deterministic splittable RNG so that the whole sort is
//! internally deterministic (paper Appendix A).

use crate::random::Rng;

/// Returns `count` indices drawn uniformly at random (with replacement) from
/// `0..n`.  Deterministic for a fixed `rng`.
pub fn sample_indices(rng: Rng, n: usize, count: usize) -> Vec<usize> {
    if n == 0 || count == 0 {
        return Vec::new();
    }
    (0..count)
        .map(|i| rng.ith_in(i as u64, n as u64) as usize)
        .collect()
}

/// Copies `count` sampled records out of `data` (with replacement).
pub fn sample_records<T: Copy>(rng: Rng, data: &[T], count: usize) -> Vec<T> {
    sample_indices(rng, data.len(), count)
        .into_iter()
        .map(|i| data[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_in_range_and_deterministic() {
        let rng = Rng::new(77);
        let a = sample_indices(rng, 1000, 500);
        let b = sample_indices(rng, 1000, 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|&i| i < 1000));
    }

    #[test]
    fn empty_cases() {
        let rng = Rng::new(1);
        assert!(sample_indices(rng, 0, 10).is_empty());
        assert!(sample_indices(rng, 10, 0).is_empty());
        let data: Vec<u32> = vec![];
        assert!(sample_records(rng, &data, 5).is_empty());
    }

    #[test]
    fn samples_cover_the_range() {
        let rng = Rng::new(3);
        let n = 50;
        let samples = sample_indices(rng, n, 5000);
        let mut seen = vec![false; n];
        for i in samples {
            seen[i] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "5000 draws should hit all 50 values"
        );
    }

    #[test]
    fn sample_records_pulls_values() {
        let rng = Rng::new(4);
        let data: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let s = sample_records(rng, &data, 200);
        assert_eq!(s.len(), 200);
        assert!(s.iter().all(|&x| x % 2 == 0 && x < 200));
    }
}
