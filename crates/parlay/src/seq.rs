//! Sequence construction utilities (`tabulate`, `map`, `filter_map_index`,
//! `flatten`) in the style of ParlayLib's `parlay::sequence` helpers.
//!
//! These are small but load-bearing: the workload generators and the
//! evaluation harness build multi-million-element vectors, and doing so with
//! a parallel tabulate instead of a sequential `collect` keeps generation
//! from dominating experiment wall-clock time on many-core machines.

use crate::par::parallel_for;
use crate::scan::scan_exclusive_in_place;
use crate::slice::UnsafeSliceCell;

/// Builds a vector of length `n` whose `i`-th element is `f(i)`, in parallel.
pub fn tabulate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Sync + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let cell = UnsafeSliceCell::new(&mut out);
        parallel_for(0, n, |i| unsafe { cell.write(i, f(i)) });
    }
    out
}

/// Applies `f` to every element in parallel, producing a new vector.
pub fn map<T, U, F>(data: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send + Sync + Default + Clone,
    F: Fn(&T) -> U + Sync,
{
    tabulate(data.len(), |i| f(&data[i]))
}

/// Parallel flatten of a slice of vectors into one vector, preserving order.
pub fn flatten<T>(chunks: &[Vec<T>]) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
{
    let mut offsets: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
    let total = scan_exclusive_in_place(&mut offsets);
    let mut out = vec![T::default(); total];
    {
        let cell = UnsafeSliceCell::new(&mut out);
        let offsets_ref = &offsets;
        parallel_for(0, chunks.len(), |c| {
            let dst = unsafe { cell.slice_mut(offsets_ref[c], chunks[c].len()) };
            dst.copy_from_slice(&chunks[c]);
        });
    }
    out
}

/// Splits `0..n` into `pieces` nearly equal contiguous ranges.
pub fn split_ranges(n: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.max(1);
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0usize;
    for p in 0..pieces {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_and_map() {
        let v = tabulate(10_000, |i| i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
        let doubled = map(&v, |&x| x + 1);
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == i * 2 + 1));
        let empty: Vec<u8> = tabulate(0, |_| 0u8);
        assert!(empty.is_empty());
    }

    #[test]
    fn flatten_preserves_order() {
        let chunks: Vec<Vec<u32>> = (0..100)
            .map(|c| (0..c).map(|x| c * 1000 + x).collect())
            .collect();
        let flat = flatten(&chunks);
        let want: Vec<u32> = chunks.iter().flatten().copied().collect();
        assert_eq!(flat, want);
        assert!(flatten::<u8>(&[]).is_empty());
    }

    #[test]
    fn split_ranges_covers_everything() {
        for (n, pieces) in [(0usize, 3usize), (10, 3), (7, 7), (100, 1), (5, 10)] {
            let ranges = split_ranges(n, pieces);
            assert_eq!(ranges.len(), pieces.max(1));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            // Contiguous and ordered.
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
