//! Parallel k-way merge of sorted sequences.
//!
//! The primitive behind the streaming sorter's final pass
//! (`crates/stream`): `k` sorted runs are merged into one sorted output.
//! Two layers are provided:
//!
//! * [`LoserTree`] — a classic tournament *loser tree* over `k` cursors.
//!   Each `pop` performs exactly `⌈log2 k⌉` comparisons (replay of one
//!   leaf-to-root path), the optimal comparison count for k-way merging.
//!   It works over any [`RunSource`], so out-of-core callers can plug in
//!   buffered file readers and merge runs much larger than RAM.
//! * [`kway_merge_into`] / [`kway_merge_by`] — a parallel in-memory merge:
//!   the output is recursively split by *stable multi-sequence selection*
//!   (pick the midpoint of the largest run as pivot, split every run around
//!   it with the tie-breaking rule below) and the two halves merge in
//!   parallel via [`rayon::join`]; small pieces fall back to a sequential
//!   loser tree.
//!
//! **Stability.** Ties always resolve toward the run with the smaller
//! index, and order within a run is preserved.  If run `i` holds records
//! that arrived before run `i + 1`'s (as in the streaming sorter, where
//! runs are created in arrival order), the merge is a stable sort of the
//! concatenated input.

use crate::binsearch::{lower_bound_by, upper_bound_by};
use std::cmp::Ordering;

/// A cursor over one sorted run: peek at the head, pop to advance.
///
/// Implemented here for in-memory slices ([`SliceSource`]); the streaming
/// crate implements it for buffered spill-file readers.
pub trait RunSource {
    type Item;
    /// The current head of the run, or `None` when exhausted.
    fn peek(&self) -> Option<&Self::Item>;
    /// Removes and returns the head.
    fn pop(&mut self) -> Option<Self::Item>;
}

/// [`RunSource`] over a sorted slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
    pos: usize,
}

impl<'a, T> SliceSource<'a, T> {
    pub fn new(slice: &'a [T]) -> Self {
        Self { slice, pos: 0 }
    }
}

impl<T: Copy> RunSource for SliceSource<'_, T> {
    type Item = T;

    #[inline]
    fn peek(&self) -> Option<&T> {
        self.slice.get(self.pos)
    }

    #[inline]
    fn pop(&mut self) -> Option<T> {
        let item = self.slice.get(self.pos).copied();
        self.pos += usize::from(item.is_some());
        item
    }
}

/// [`RunSource`] over a run delivered as a sequence of record *blocks* by a
/// refill callback — the cursor shape of read-ahead merging: a prefetcher
/// decodes blocks of a spilled run into a bounded channel on its own
/// thread, and the merge-side cursor refills from that channel only when
/// its current block runs dry.
///
/// `refill` returns the next block or `None` when the run is exhausted;
/// `None` is terminal (the callback is not invoked again).  Empty blocks
/// are skipped.  The source eagerly refills whenever its block empties so
/// that [`RunSource::peek`] always sees the true head of the run — the
/// invariant the loser tree relies on.
pub struct BlockSource<T, F> {
    block: std::vec::IntoIter<T>,
    refill: F,
    exhausted: bool,
}

impl<T, F: FnMut() -> Option<Vec<T>>> BlockSource<T, F> {
    pub fn new(mut refill: F) -> Self {
        let mut exhausted = false;
        let block = Self::next_block(&mut refill, &mut exhausted);
        Self {
            block,
            refill,
            exhausted,
        }
    }

    /// Pulls blocks until a non-empty one arrives or the run ends.
    fn next_block(refill: &mut F, exhausted: &mut bool) -> std::vec::IntoIter<T> {
        loop {
            match refill() {
                Some(block) if !block.is_empty() => return block.into_iter(),
                Some(_) => continue,
                None => {
                    *exhausted = true;
                    return Vec::new().into_iter();
                }
            }
        }
    }
}

impl<T, F: FnMut() -> Option<Vec<T>>> RunSource for BlockSource<T, F> {
    type Item = T;

    #[inline]
    fn peek(&self) -> Option<&T> {
        self.block.as_slice().first()
    }

    fn pop(&mut self) -> Option<T> {
        let item = self.block.next()?;
        if self.block.as_slice().is_empty() && !self.exhausted {
            self.block = Self::next_block(&mut self.refill, &mut self.exhausted);
        }
        Some(item)
    }
}

/// Tournament loser tree over `k` run sources.
///
/// The tree stores, at every internal node, the *loser* of the match played
/// there; the overall winner sits at the root.  Popping the winner replays
/// only its leaf-to-root path: `⌈log2 k⌉` comparisons per output record.
/// Exhausted runs lose every match, so the merge finishes cleanly without
/// sentinel keys.  Ties favour the smaller run index (stability).
///
/// The comparator may be **any strict weak ordering** over the record
/// type, not only a key projection: the index tie rule (`i < j` wins on
/// `!(lt)(b, a)`) only assumes that "neither strictly smaller" means
/// *equivalent under `lt`*, which every strict weak ordering guarantees.
/// Composite comparators — e.g. ordering spilled string records by
/// `(u64 prefix, full key bytes)` so equal prefixes tie-break on the
/// embedded key — therefore merge stably with no extra comparator calls:
/// records the comparator cannot distinguish still come out in run-index
/// (arrival) order.
pub struct LoserTree<S, F> {
    sources: Vec<S>,
    /// `tree[0]` is the current winner; `tree[1..k2]` hold match losers.
    tree: Vec<usize>,
    /// Number of leaves (k rounded up to a power of two).
    k2: usize,
    lt: F,
}

impl<S, F> LoserTree<S, F>
where
    S: RunSource,
    F: Fn(&S::Item, &S::Item) -> bool,
{
    pub fn new(sources: Vec<S>, lt: F) -> Self {
        let k2 = sources.len().next_power_of_two().max(1);
        let mut this = Self {
            sources,
            tree: vec![usize::MAX; k2],
            k2,
            lt,
        };
        if !this.sources.is_empty() {
            this.tree[0] = this.init_winner(1);
        }
        this
    }

    /// `true` if run `i`'s head wins against run `j`'s (ties favour the
    /// smaller index; exhausted runs always lose).
    ///
    /// One comparator call per match: since the tie rule is index-based,
    /// for `i < j` run `i` wins exactly when `j`'s head is not strictly
    /// smaller — no second call needed to distinguish ties.
    fn beats(&self, i: usize, j: usize) -> bool {
        match (self.head(i), self.head(j)) {
            (Some(a), Some(b)) => {
                if i < j {
                    !(self.lt)(b, a)
                } else {
                    (self.lt)(a, b)
                }
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => i < j,
        }
    }

    fn head(&self, i: usize) -> Option<&S::Item> {
        self.sources.get(i).and_then(|s| s.peek())
    }

    /// Plays the tournament below internal node `node`, storing losers,
    /// returning the winner (a run index, possibly of a phantom leaf).
    fn init_winner(&mut self, node: usize) -> usize {
        if node >= self.k2 {
            return node - self.k2;
        }
        let left = self.init_winner(2 * node);
        let right = self.init_winner(2 * node + 1);
        let (winner, loser) = if self.beats(left, right) {
            (left, right)
        } else {
            (right, left)
        };
        self.tree[node] = loser;
        winner
    }

    /// Removes and returns the globally smallest head record.
    pub fn pop(&mut self) -> Option<S::Item> {
        let winner = self.tree[0];
        if winner == usize::MAX {
            return None;
        }
        let item = self.sources[winner].pop()?;
        // Replay the winner's path: at each ancestor, the stored loser may
        // now beat the advanced run.
        let mut current = winner;
        let mut node = (self.k2 + winner) / 2;
        while node >= 1 {
            let rival = self.tree[node];
            if self.beats(rival, current) {
                self.tree[node] = current;
                current = rival;
            }
            node /= 2;
        }
        self.tree[0] = current;
        Some(item)
    }
}

impl<S, F> Iterator for LoserTree<S, F>
where
    S: RunSource,
    F: Fn(&S::Item, &S::Item) -> bool,
{
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        self.pop()
    }
}

/// Output size below which the parallel merge runs a sequential loser tree.
const KWAY_GRAIN: usize = 8192;

/// Merges `k` sorted runs into `out`, in parallel, stably (ties favour the
/// run with the smaller index).
///
/// # Panics
/// Panics if `out.len()` differs from the total length of the runs.
pub fn kway_merge_into<T, F>(runs: &[&[T]], out: &mut [T], lt: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(
        out.len(),
        total,
        "kway_merge_into: output length must equal total run length"
    );
    kway_rec(runs.to_vec(), out, lt);
}

/// Merges `k` sorted runs into a fresh vector (stable, parallel).
pub fn kway_merge_by<T, F>(runs: &[&[T]], lt: &F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> bool + Sync,
{
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = vec![T::default(); total];
    kway_merge_into(runs, &mut out, lt);
    out
}

fn kway_rec<T, F>(runs: Vec<&[T]>, out: &mut [T], lt: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    // Dropping exhausted runs keeps the relative order of the rest, so the
    // smaller-index-wins tie rule still encodes arrival order.
    let runs: Vec<&[T]> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    match runs.len() {
        0 => return,
        1 => {
            out.copy_from_slice(runs[0]);
            return;
        }
        2 => {
            crate::merge::par_merge_into(runs[0], runs[1], out, lt);
            return;
        }
        _ => {}
    }
    if out.len() <= KWAY_GRAIN {
        seq_loser_merge(&runs, out, lt);
        return;
    }

    // Stable multi-sequence selection: take the midpoint record of the
    // largest run as pivot and split every run around it.  A record x of
    // run i belongs left of the pivot (from run j, position p) iff
    // x < pivot, or x == pivot and i < j, or i == j and pos < p — exactly
    // the stable merge order.
    let j = (0..runs.len())
        .max_by_key(|&i| runs[i].len())
        .expect("non-empty run set");
    let p = runs[j].len() / 2;
    let pivot = &runs[j][p];

    let mut left: Vec<&[T]> = Vec::with_capacity(runs.len());
    let mut right: Vec<&[T]> = Vec::with_capacity(runs.len());
    let mut left_total = 0usize;
    for (i, run) in runs.iter().enumerate() {
        let split = match i.cmp(&j) {
            Ordering::Equal => p,
            // Earlier runs: ties precede the pivot.
            Ordering::Less => upper_bound_by(run, |x| {
                if (lt)(pivot, x) {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }),
            // Later runs: ties follow the pivot.
            Ordering::Greater => lower_bound_by(run, |x| {
                if (lt)(x, pivot) {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }),
        };
        left.push(&run[..split]);
        right.push(&run[split..]);
        left_total += split;
    }

    let (out_left, out_right) = out.split_at_mut(left_total);
    rayon::join(
        || kway_rec(left, out_left, lt),
        || kway_rec(right, out_right, lt),
    );
}

fn seq_loser_merge<T, F>(runs: &[&[T]], out: &mut [T], lt: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    let sources: Vec<SliceSource<'_, T>> = runs.iter().map(|r| SliceSource::new(r)).collect();
    let mut tree = LoserTree::new(sources, lt);
    for slot in out.iter_mut() {
        *slot = tree.pop().expect("loser tree exhausted early");
    }
    debug_assert!(tree.pop().is_none(), "loser tree has leftover records");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Rng;

    fn lt_u64(a: &u64, b: &u64) -> bool {
        a < b
    }

    #[test]
    fn merges_three_small_runs() {
        let runs: Vec<&[u64]> = vec![&[1, 4, 7], &[2, 5, 8], &[0, 3, 6, 9]];
        let got = kway_merge_by(&runs, &lt_u64);
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_and_single_runs() {
        let empty: &[u64] = &[];
        assert!(kway_merge_by::<u64, _>(&[], &lt_u64).is_empty());
        assert!(kway_merge_by(&[empty, empty], &lt_u64).is_empty());
        let single: Vec<&[u64]> = vec![&[1, 2, 3], empty];
        assert_eq!(kway_merge_by(&single, &lt_u64), vec![1, 2, 3]);
    }

    #[test]
    fn merges_many_large_random_runs() {
        let rng = Rng::new(7);
        let k = 9;
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for r in 0..k {
            let len = 20_000 + (r * 1733) % 9000;
            let mut v: Vec<u64> = (0..len)
                .map(|i| rng.fork(r as u64).ith_in(i as u64, 1 << 40))
                .collect();
            v.sort_unstable();
            runs.push(v);
        }
        let slices: Vec<&[u64]> = runs.iter().map(|v| v.as_slice()).collect();
        let got = kway_merge_by(&slices, &lt_u64);
        let mut want: Vec<u64> = runs.concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stability_ties_favour_earlier_runs() {
        // Records (key, tag); tags encode (run, position) so the stable
        // order is fully determined.
        let k = 5;
        let per = 400;
        let mut runs: Vec<Vec<(u32, u32)>> = Vec::new();
        for r in 0..k {
            // Keys drawn from a tiny universe => masses of cross-run ties.
            let mut v: Vec<(u32, u32)> = (0..per)
                .map(|i| (((i * 37 + r * 11) % 7) as u32, (r * per + i) as u32))
                .collect();
            v.sort_by_key(|&(key, _)| key);
            runs.push(v);
        }
        let slices: Vec<&[(u32, u32)]> = runs.iter().map(|v| v.as_slice()).collect();
        let got = kway_merge_by(&slices, &|a, b| a.0 < b.0);
        // Reference: stable sort of run-0 ++ run-1 ++ ... by key.
        let mut want: Vec<(u32, u32)> = runs.concat();
        want.sort_by_key(|&(key, _)| key);
        assert_eq!(got, want);
    }

    #[test]
    fn tie_breaking_comparators_merge_stably() {
        // Regression for the strict-weak-ordering claim on the tie rule:
        // records are (prefix, full_key, tag) triples merged by the
        // composite order (prefix, full_key) — the shape the string-key
        // spill merge uses, where equal u64 prefixes tie-break on the
        // embedded key bytes.  Records equal under the *composite* order
        // must still come out in run-index order (tags prove it).
        type Rec = (u64, &'static str, u32);
        let keys = ["aa", "ab", "ba", "bb"];
        let k = 4;
        let per = 300;
        let mut runs: Vec<Vec<Rec>> = Vec::new();
        for r in 0..k {
            let mut v: Vec<Rec> = (0..per)
                .map(|i| {
                    let prefix = ((i * 13 + r * 5) % 3) as u64;
                    let key = keys[(i * 7 + r) % keys.len()];
                    (prefix, key, (r * per + i) as u32)
                })
                .collect();
            v.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            runs.push(v);
        }
        let lt = |a: &Rec, b: &Rec| (a.0, a.1) < (b.0, b.1);
        let sources: Vec<SliceSource<'_, Rec>> = runs
            .iter()
            .map(|v| SliceSource::new(v.as_slice()))
            .collect();
        let got: Vec<Rec> = LoserTree::new(sources, lt).collect();
        let mut want: Vec<Rec> = runs.concat();
        want.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        assert_eq!(got, want, "composite comparator must merge stably");
        // Same records through the parallel materializing merge.
        let slices: Vec<&[Rec]> = runs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(kway_merge_by(&slices, &lt), want);
    }

    #[test]
    fn loser_tree_pops_in_order_over_sources() {
        let a = [1u64, 5, 9];
        let b = [2u64, 6];
        let c = [0u64, 7, 8, 10];
        let sources = vec![
            SliceSource::new(&a[..]),
            SliceSource::new(&b[..]),
            SliceSource::new(&c[..]),
        ];
        let tree = LoserTree::new(sources, |x: &u64, y: &u64| x < y);
        let got: Vec<u64> = tree.collect();
        assert_eq!(got, vec![0, 1, 2, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn loser_tree_on_empty_and_tiny_inputs() {
        let mut empty: LoserTree<SliceSource<'_, u64>, _> =
            LoserTree::new(Vec::new(), |x: &u64, y: &u64| x < y);
        assert_eq!(empty.pop(), None);

        let one = [3u64];
        let mut single = LoserTree::new(vec![SliceSource::new(&one[..])], |x: &u64, y: &u64| x < y);
        assert_eq!(single.pop(), Some(3));
        assert_eq!(single.pop(), None);
    }

    #[test]
    fn block_source_refills_and_skips_empty_blocks() {
        let blocks: Vec<Vec<u64>> = vec![vec![1, 2], vec![], vec![3], vec![], vec![], vec![4, 5]];
        let mut iter = blocks.into_iter();
        let mut src = BlockSource::new(move || iter.next());
        let mut got = Vec::new();
        while let Some(x) = src.pop() {
            // peek must always agree with the next pop across refills.
            let peeked = src.peek().copied();
            got.push(x);
            if let Some(p) = peeked {
                assert_eq!(src.pop(), Some(p));
                got.push(p);
            }
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert_eq!(src.pop(), None);
        assert!(src.peek().is_none());
    }

    #[test]
    fn block_source_merges_like_a_slice_source() {
        // Three runs delivered in uneven blocks must merge exactly like
        // their flat concatenation.
        let runs: Vec<Vec<u64>> = vec![
            (0..300).map(|i| i * 3).collect(),
            (0..200).map(|i| i * 5).collect(),
            (0..100).map(|i| i * 7 + 1).collect(),
        ];
        let sources: Vec<_> = runs
            .iter()
            .enumerate()
            .map(|(r, run)| {
                let chunk = 2 * r + 3;
                let blocks: Vec<Vec<u64>> = run.chunks(chunk).map(|c| c.to_vec()).collect();
                let mut iter = blocks.into_iter();
                BlockSource::new(move || iter.next())
            })
            .collect();
        let tree = LoserTree::new(sources, |a: &u64, b: &u64| a < b);
        let got: Vec<u64> = tree.collect();
        let mut want: Vec<u64> = runs.concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_block_source_is_exhausted_immediately() {
        let mut calls = 0usize;
        let mut src: BlockSource<u64, _> = BlockSource::new(|| {
            calls += 1;
            None
        });
        assert!(src.peek().is_none());
        assert_eq!(src.pop(), None);
        assert_eq!(src.pop(), None);
        // `None` is terminal: the callback ran exactly once.
        drop(src);
        assert_eq!(calls, 1);
    }

    #[test]
    fn kway_merge_into_checks_length() {
        let runs: Vec<&[u64]> = vec![&[1, 2], &[3]];
        let mut out = vec![0u64; 3];
        kway_merge_into(&runs, &mut out, &lt_u64);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn kway_merge_into_wrong_length_panics() {
        let runs: Vec<&[u64]> = vec![&[1, 2], &[3]];
        let mut out = vec![0u64; 2];
        kway_merge_into(&runs, &mut out, &lt_u64);
    }
}
