//! Prefix sums (scans).
//!
//! The blocked parallel exclusive scan here is the standard two-pass
//! algorithm: per-block sequential sums, a scan over the (small) block-sum
//! array, then a per-block sequential pass adding the block offset.  Work
//! `O(n)`, span `O(log n + grain)`.  It is the building block of the stable
//! counting sort (Appendix B) and the pack primitive.

use crate::par::parallel_chunks;
use crate::DEFAULT_GRANULARITY;

/// Sequential exclusive scan helper; returns the total.
fn seq_scan_exclusive(data: &mut [usize], offset: usize) -> usize {
    let mut acc = offset;
    for x in data.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Exclusive prefix sum, returning `(prefix, total)` without modifying the
/// input.
pub fn scan_exclusive(data: &[usize]) -> (Vec<usize>, usize) {
    let mut out = data.to_vec();
    let total = scan_exclusive_in_place(&mut out);
    (out, total)
}

/// Inclusive prefix sum, returning the new vector.
pub fn scan_inclusive(data: &[usize]) -> Vec<usize> {
    let (mut out, _) = scan_exclusive(data);
    for (o, d) in out.iter_mut().zip(data.iter()) {
        *o += *d;
    }
    out
}

/// In-place exclusive prefix sum; returns the total sum of the original
/// elements.  Parallel (blocked) when the input is large.
pub fn scan_exclusive_in_place(data: &mut [usize]) -> usize {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    if n <= DEFAULT_GRANULARITY * 2 {
        return seq_scan_exclusive(data, 0);
    }
    let grain = DEFAULT_GRANULARITY;
    let num_blocks = n.div_ceil(grain);
    // Pass 1: per-block totals.
    let mut block_sums = vec![0usize; num_blocks];
    {
        let sums_cell = crate::slice::UnsafeSliceCell::new(&mut block_sums);
        parallel_chunks(data, grain, |b, chunk| {
            let s: usize = chunk.iter().sum();
            unsafe { sums_cell.write(b, s) };
        });
    }
    // Pass 2: scan the block totals (small, sequential).
    let total = seq_scan_exclusive(&mut block_sums, 0);
    // Pass 3: per-block exclusive scan with the block offset.
    {
        let sums = &block_sums;
        parallel_chunks(data, grain, |b, chunk| {
            let mut acc = sums[b];
            for x in chunk.iter_mut() {
                let v = *x;
                *x = acc;
                acc += v;
            }
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(data: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(data.len());
        let mut acc = 0usize;
        for &x in data {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn small_scan_matches_reference() {
        let v = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let (got, total) = scan_exclusive(&v);
        let (want, wtotal) = reference_exclusive(&v);
        assert_eq!(got, want);
        assert_eq!(total, wtotal);
    }

    #[test]
    fn large_scan_matches_reference() {
        let v: Vec<usize> = (0..100_000).map(|i| (i * 7919) % 13).collect();
        let (got, total) = scan_exclusive(&v);
        let (want, wtotal) = reference_exclusive(&v);
        assert_eq!(got, want);
        assert_eq!(total, wtotal);
    }

    #[test]
    fn inclusive_scan() {
        let v = vec![1usize, 2, 3, 4];
        assert_eq!(scan_inclusive(&v), vec![1, 3, 6, 10]);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(scan_exclusive_in_place(&mut v), 0);
        let mut v = vec![42usize];
        assert_eq!(scan_exclusive_in_place(&mut v), 42);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn in_place_total_is_sum() {
        let mut v: Vec<usize> = (0..30_000).map(|i| i % 5).collect();
        let expect: usize = v.iter().sum();
        let total = scan_exclusive_in_place(&mut v);
        assert_eq!(total, expect);
        assert_eq!(v[0], 0);
    }
}
