//! Parallel in-place reversal and rotation.
//!
//! The dovetail merge (paper Alg. 3, Fig. 3 step 3) moves a heavy bucket to
//! an overlapping earlier destination by *flipping* the bucket and then
//! flipping the whole affected region — the classic in-place circular-shift
//! technique.  Both flips are a parallel loop over swap pairs.

use crate::par::parallel_for;
use crate::slice::UnsafeSliceCell;

/// Reverses `data` in place, in parallel.
pub fn par_reverse<T: Copy + Send + Sync>(data: &mut [T]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let cell = UnsafeSliceCell::new(data);
    parallel_for(0, n / 2, |i| unsafe { cell.swap(i, n - 1 - i) });
}

/// Rotates `data` left by `mid` positions in place using three reversals
/// (the involution-based in-place rotation cited by the paper [27, 60]).
///
/// After the call, the element previously at index `mid` is at index 0.
pub fn par_rotate_left<T: Copy + Send + Sync>(data: &mut [T], mid: usize) {
    let n = data.len();
    if n == 0 {
        return;
    }
    let mid = mid % n;
    if mid == 0 {
        return;
    }
    par_reverse(&mut data[..mid]);
    par_reverse(&mut data[mid..]);
    par_reverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_matches_std() {
        for n in [0usize, 1, 2, 3, 10, 1000, 65_537] {
            let mut a: Vec<usize> = (0..n).collect();
            let mut b = a.clone();
            par_reverse(&mut a);
            b.reverse();
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn rotate_matches_std() {
        for n in [1usize, 2, 7, 100, 10_001] {
            for mid in [0usize, 1, n / 3, n / 2, n - 1, n] {
                let mut a: Vec<usize> = (0..n).collect();
                let mut b = a.clone();
                par_rotate_left(&mut a, mid);
                b.rotate_left(mid % n);
                assert_eq!(a, b, "n = {n}, mid = {mid}");
            }
        }
    }

    #[test]
    fn rotate_empty() {
        let mut v: Vec<u8> = vec![];
        par_rotate_left(&mut v, 3);
        assert!(v.is_empty());
    }
}
