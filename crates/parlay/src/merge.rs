//! Parallel merge of two sorted sequences.
//!
//! This is the `PLMerge` baseline of the paper's Section 6.3: a standard
//! divide-and-conquer parallel merge with `O(n)` work and `O(log^2 n)` span.
//! DovetailSort's evaluation compares its dovetail merge against exactly this
//! primitive (Fig. 4(c)(d)).

use crate::slice::UnsafeSliceCell;

/// Sequential cutoff below which the merge runs serially.
const MERGE_GRAIN: usize = 4096;

/// Merges the two sorted slices `a` and `b` into `out` using the strict
/// less-than predicate `lt`.  Stable: on ties, elements of `a` precede
/// elements of `b`, and relative order within each input is preserved.
///
/// # Panics
/// Panics if `out.len() != a.len() + b.len()`.
pub fn par_merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], lt: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    assert_eq!(
        out.len(),
        a.len() + b.len(),
        "par_merge_into: output length must equal sum of input lengths"
    );
    let out_cell = UnsafeSliceCell::new(out);
    merge_rec(a, b, &out_cell, 0, lt);
}

/// Merges two sorted vectors and returns the merged vector (stable; ties
/// favour `a`).
pub fn par_merge_by<T, F>(a: &[T], b: &[T], lt: &F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> bool + Sync,
{
    let mut out = vec![T::default(); a.len() + b.len()];
    par_merge_into(a, b, &mut out, lt);
    out
}

fn seq_merge<T, F>(a: &[T], b: &[T], out: &UnsafeSliceCell<'_, T>, offset: usize, lt: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    let (mut i, mut j, mut o) = (0usize, 0usize, offset);
    while i < a.len() && j < b.len() {
        // Stability: take from `a` unless b[j] is strictly smaller.
        if lt(&b[j], &a[i]) {
            unsafe { out.write(o, b[j]) };
            j += 1;
        } else {
            unsafe { out.write(o, a[i]) };
            i += 1;
        }
        o += 1;
    }
    while i < a.len() {
        unsafe { out.write(o, a[i]) };
        i += 1;
        o += 1;
    }
    while j < b.len() {
        unsafe { out.write(o, b[j]) };
        j += 1;
        o += 1;
    }
}

fn merge_rec<T, F>(a: &[T], b: &[T], out: &UnsafeSliceCell<'_, T>, offset: usize, lt: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    let n = a.len() + b.len();
    if n <= MERGE_GRAIN {
        seq_merge(a, b, out, offset, lt);
        return;
    }
    // Split the larger sequence at its midpoint and binary-search the split
    // value in the other sequence; recurse on the two halves in parallel.
    if a.len() >= b.len() {
        let ma = a.len() / 2;
        let pivot = &a[ma];
        // Elements of b strictly less than pivot go left (ties go right so
        // that equal elements of `a` stay before equal elements of `b`).
        let mb = crate::binsearch::lower_bound_by(b, |x| {
            if lt(x, pivot) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        let (a_lo, a_hi) = a.split_at(ma);
        let (b_lo, b_hi) = b.split_at(mb);
        rayon::join(
            || merge_rec(a_lo, b_lo, out, offset, lt),
            || merge_rec(a_hi, b_hi, out, offset + ma + mb, lt),
        );
    } else {
        let mb = b.len() / 2;
        let pivot = &b[mb];
        // Elements of a less than or equal to pivot go left (ties from `a`
        // must precede the pivot from `b`).
        let ma = crate::binsearch::lower_bound_by(a, |x| {
            if lt(pivot, x) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Less
            }
        });
        let (a_lo, a_hi) = a.split_at(ma);
        let (b_lo, b_hi) = b.split_at(mb);
        rayon::join(
            || merge_rec(a_lo, b_lo, out, offset, lt),
            || merge_rec(a_hi, b_hi, out, offset + ma + mb, lt),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Rng;

    #[test]
    fn merges_small_slices() {
        let a = vec![1, 3, 5, 7];
        let b = vec![2, 3, 4, 8, 9];
        let out = par_merge_by(&a, &b, &|x, y| x < y);
        assert_eq!(out, vec![1, 2, 3, 3, 4, 5, 7, 8, 9]);
    }

    #[test]
    fn merges_large_random_slices() {
        let rng = Rng::new(5);
        let mut a: Vec<u64> = (0..60_000).map(|i| rng.ith_in(i, 1 << 20)).collect();
        let mut b: Vec<u64> = (0..80_000)
            .map(|i| rng.fork(1).ith_in(i, 1 << 20))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        let got = par_merge_by(&a, &b, &|x, y| x < y);
        let mut want = [a, b].concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stability_ties_favour_first_input() {
        // Records are (key, source) pairs; equal keys must keep a-before-b
        // and input order within each source.
        let a: Vec<(u32, u32)> = vec![(5, 0), (5, 1), (7, 2)];
        let b: Vec<(u32, u32)> = vec![(5, 100), (6, 101), (7, 102)];
        let out = par_merge_by(&a, &b, &|x, y| x.0 < y.0);
        assert_eq!(
            out,
            vec![(5, 0), (5, 1), (5, 100), (6, 101), (7, 2), (7, 102)]
        );
    }

    #[test]
    fn stability_on_large_inputs() {
        let rng = Rng::new(11);
        let n = 50_000u64;
        let mut a: Vec<(u32, u32)> = (0..n)
            .map(|i| (rng.ith_in(i, 100) as u32, i as u32))
            .collect();
        let mut b: Vec<(u32, u32)> = (0..n)
            .map(|i| (rng.fork(3).ith_in(i, 100) as u32, (n + i) as u32))
            .collect();
        a.sort_by_key(|&(k, _)| k);
        b.sort_by_key(|&(k, _)| k);
        let got = par_merge_by(&a, &b, &|x, y| x.0 < y.0);
        let mut want = [a, b].concat();
        want.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
        // Because all of `a`'s tags are < all of `b`'s tags for equal keys,
        // a stable a-before-b merge equals the tag-tiebroken sort.
        assert_eq!(got, want);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<u32> = vec![];
        let a = vec![1u32, 2, 3];
        assert_eq!(par_merge_by(&e, &e, &|x, y| x < y), e);
        assert_eq!(par_merge_by(&a, &e, &|x, y| x < y), a);
        assert_eq!(par_merge_by(&e, &a, &|x, y| x < y), a);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn wrong_output_length_panics() {
        let a = [1u32, 2];
        let b = [3u32];
        let mut out = vec![0u32; 2];
        par_merge_into(&a, &b, &mut out, &|x, y| x < y);
    }
}
