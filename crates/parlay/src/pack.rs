//! Parallel pack (filter) built from a flag scan.
//!
//! Used by the workload generators and the samplesort baseline to extract
//! subsets of records in parallel while preserving input order — the same
//! `pack` primitive ParlayLib provides.

use crate::par::parallel_for;
use crate::scan::scan_exclusive_in_place;
use crate::slice::UnsafeSliceCell;
use crate::DEFAULT_GRANULARITY;

/// Returns, in input order, the elements for which `keep` returns true.
pub fn pack<T, F>(data: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let idx = pack_index(data.len(), |i| keep(&data[i]));
    let mut out = Vec::with_capacity(idx.len());
    out.resize_with(idx.len(), || data[0]);
    if idx.is_empty() {
        return Vec::new();
    }
    let out_cell = UnsafeSliceCell::new(&mut out);
    parallel_for(0, idx.len(), |i| unsafe { out_cell.write(i, data[idx[i]]) });
    out
}

/// Returns the indices `i` in `0..n` (in increasing order) for which
/// `keep(i)` returns true.
pub fn pack_index<F>(n: usize, keep: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    // Blocked: count survivors per block, scan, then fill.
    let grain = DEFAULT_GRANULARITY;
    let num_blocks = n.div_ceil(grain);
    let mut block_counts = vec![0usize; num_blocks];
    {
        let counts = UnsafeSliceCell::new(&mut block_counts);
        let keep = &keep;
        parallel_for(0, num_blocks, |b| {
            let start = b * grain;
            let end = ((b + 1) * grain).min(n);
            let c = (start..end).filter(|&i| keep(i)).count();
            unsafe { counts.write(b, c) };
        });
    }
    let total = scan_exclusive_in_place(&mut block_counts);
    let mut out = vec![0usize; total];
    {
        let out_cell = UnsafeSliceCell::new(&mut out);
        let offsets = &block_counts;
        let keep = &keep;
        parallel_for(0, num_blocks, |b| {
            let start = b * grain;
            let end = ((b + 1) * grain).min(n);
            let mut pos = offsets[b];
            for i in start..end {
                if keep(i) {
                    unsafe { out_cell.write(pos, i) };
                    pos += 1;
                }
            }
        });
    }
    out
}

/// Splits `0..n` into the contiguous chunks delimited by the head flags:
/// `head(i)` marks position `i` as the first element of a new chunk
/// (`head(0)` is implied).  Returns the chunks as half-open ranges, in
/// order — the "chunked pack" used to turn a grouped array into its groups.
pub fn pack_ranges<F>(n: usize, head: F) -> Vec<std::ops::Range<usize>>
where
    F: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let heads = pack_index(n, |i| i == 0 || head(i));
    let mut out = Vec::with_capacity(heads.len());
    for (j, &start) in heads.iter().enumerate() {
        let end = heads.get(j + 1).copied().unwrap_or(n);
        out.push(start..end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_ranges_splits_runs() {
        let data = [3u32, 3, 3, 1, 7, 7, 2];
        let ranges = pack_ranges(data.len(), |i| data[i] != data[i - 1]);
        assert_eq!(ranges, vec![0..3, 3..4, 4..6, 6..7]);
    }

    #[test]
    fn pack_ranges_edge_cases() {
        assert!(pack_ranges(0, |_| true).is_empty());
        // No interior heads: one chunk covering everything.
        assert_eq!(pack_ranges(5, |_| false), vec![0..5]);
        // Every position a head: singleton chunks.
        assert_eq!(pack_ranges(3, |_| true), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn pack_index_matches_filter() {
        let n = 100_000;
        let got = pack_index(n, |i| i % 7 == 0);
        let want: Vec<usize> = (0..n).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_preserves_order() {
        let data: Vec<u32> = (0..50_000).map(|i| (i * 31) % 1000).collect();
        let got = pack(&data, |&x| x < 100);
        let want: Vec<u32> = data.iter().copied().filter(|&x| x < 100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_all_and_none() {
        let data: Vec<u32> = (0..10_000).collect();
        assert_eq!(pack(&data, |_| true), data);
        assert!(pack(&data, |_| false).is_empty());
        let empty: Vec<u32> = vec![];
        assert!(pack(&empty, |_| true).is_empty());
    }

    #[test]
    fn pack_index_zero_length() {
        assert!(pack_index(0, |_| true).is_empty());
    }
}
