//! A shared mutable view of a slice for *disjoint* parallel writes.
//!
//! The distribution (counting sort scatter), dovetail merge, and in-place
//! radix partition all write to a shared output buffer from many tasks, with
//! the algorithm guaranteeing that no two tasks ever touch the same index.
//! Rust cannot express that guarantee in the type system for dynamically
//! computed index sets, so the idiomatic HPC pattern is a small unsafe cell
//! around a raw pointer whose safety contract is "callers write disjoint
//! indices".  This mirrors how `rayon` itself and crates like `ndarray`
//! expose unchecked parallel writes.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A wrapper around `&mut [T]` that can be shared across threads and written
/// through from multiple tasks, provided the writes are to disjoint indices.
pub struct UnsafeSliceCell<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a UnsafeCell<[T]>>,
}

// SAFETY: the cell only permits access through `unsafe` methods whose
// contract requires disjoint index sets across threads; with that contract
// upheld there are no data races, so sharing the pointer is sound for
// `T: Send + Sync`.
unsafe impl<'a, T: Send + Sync> Send for UnsafeSliceCell<'a, T> {}
unsafe impl<'a, T: Send + Sync> Sync for UnsafeSliceCell<'a, T> {}

impl<'a, T> UnsafeSliceCell<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` concurrently, and `index`
    /// must be in bounds.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Reads the value at `index` (requires `T: Copy`).
    ///
    /// # Safety
    /// No other thread may write `index` concurrently, and `index` must be in
    /// bounds.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).read() }
    }

    /// Returns a mutable reference to the element at `index`.
    ///
    /// # Safety
    /// No other thread may access `index` concurrently, and `index` must be
    /// in bounds.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        unsafe { &mut *self.ptr.add(index) }
    }

    /// Returns a mutable sub-slice `[start, start + len)`.
    ///
    /// # Safety
    /// The returned range must not be accessed concurrently by any other
    /// thread, and it must be in bounds.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// Swaps the elements at `i` and `j`.
    ///
    /// # Safety
    /// No other thread may access `i` or `j` concurrently; both must be in
    /// bounds and distinct (or equal, in which case this is a no-op).
    #[inline]
    pub unsafe fn swap(&self, i: usize, j: usize) {
        debug_assert!(i < self.len && j < self.len);
        if i != j {
            unsafe { std::ptr::swap(self.ptr.add(i), self.ptr.add(j)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::parallel_for;

    #[test]
    fn disjoint_parallel_writes() {
        let n = 20_000;
        let mut v = vec![0usize; n];
        {
            let cell = UnsafeSliceCell::new(&mut v);
            parallel_for(0, n, |i| unsafe { cell.write(i, i * 3) });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn swap_and_read() {
        let mut v = vec![1, 2, 3, 4];
        {
            let cell = UnsafeSliceCell::new(&mut v);
            unsafe {
                cell.swap(0, 3);
                cell.swap(1, 1);
                assert_eq!(cell.read(0), 4);
            }
        }
        assert_eq!(v, vec![4, 2, 3, 1]);
    }

    #[test]
    fn slice_mut_disjoint_regions() {
        let mut v = vec![0u32; 100];
        {
            let cell = UnsafeSliceCell::new(&mut v);
            parallel_for(0, 10, |b| {
                let chunk = unsafe { cell.slice_mut(b * 10, 10) };
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = (b * 10 + k) as u32;
                }
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x as usize == i));
    }

    #[test]
    fn len_and_empty() {
        let mut v: Vec<u8> = vec![];
        let cell = UnsafeSliceCell::new(&mut v);
        assert_eq!(cell.len(), 0);
        assert!(cell.is_empty());
    }
}
