//! Granularity-controlled parallel loops on top of rayon's fork-join.
//!
//! The paper's algorithms are expressed with `parallel_for` over index
//! ranges.  A direct translation to `rayon::par_iter` over every index would
//! create one task per element; ParlayLib instead splits the range into
//! blocks of a *granularity* and recurses with binary forking.  We mirror
//! that here: the range is divided recursively with [`rayon::join`] until it
//! is at most `grain` long, then the body runs sequentially.

use crate::DEFAULT_GRANULARITY;

/// Returns the number of worker threads rayon will use.
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Runs `f` on a dedicated rayon thread pool with `threads` workers.
///
/// Used by the scalability harness (paper Figs. 4(e), 5–20) to measure
/// self-speedup with a bounded number of threads.  Panics if the pool cannot
/// be built.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon thread pool");
    pool.install(f)
}

/// Parallel for-loop over `start..end` with the default granularity.
///
/// The body must be safe to invoke concurrently for distinct indices.
pub fn parallel_for<F: Fn(usize) + Sync>(start: usize, end: usize, f: F) {
    parallel_for_grained(start, end, DEFAULT_GRANULARITY, &f);
}

/// Parallel for-loop over `start..end` where each task handles at most
/// `grain` consecutive indices sequentially.
///
/// With binary forking this has `O(end - start)` work and
/// `O(grain + log(end - start))` span, matching ParlayLib's `parallel_for`.
pub fn parallel_for_grained<F: Fn(usize) + Sync>(start: usize, end: usize, grain: usize, f: &F) {
    if start >= end {
        return;
    }
    let n = end - start;
    let grain = grain.max(1);
    if n <= grain {
        for i in start..end {
            f(i);
        }
        return;
    }
    let mid = start + n / 2;
    rayon::join(
        || parallel_for_grained(start, mid, grain, f),
        || parallel_for_grained(mid, end, grain, f),
    );
}

/// Runs `f` over every chunk of `data` of length at most `grain` in parallel,
/// passing the chunk index and the chunk itself.
pub fn parallel_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], grain: usize, f: F) {
    use rayon::prelude::*;
    let grain = grain.max(1);
    data.par_chunks_mut(grain)
        .enumerate()
        .for_each(|(i, chunk)| f(i, chunk));
}

/// Fork-join helper mirroring ParlayLib's `par_do`: runs the two closures
/// potentially in parallel and waits for both.
pub fn par_do<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    rayon::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_all_indices() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(0, n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_single() {
        let counter = AtomicUsize::new(0);
        parallel_for(5, 5, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 0);
        parallel_for(5, 6, |i| {
            assert_eq!(i, 5);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_for_small_grain() {
        let n = 1000;
        let sum = AtomicUsize::new(0);
        parallel_for_grained(0, n, 1, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn parallel_chunks_sees_every_element() {
        let mut v: Vec<usize> = (0..5000).collect();
        parallel_chunks(&mut v, 64, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn with_threads_runs_closure() {
        let r = with_threads(2, || {
            let mut v = vec![3usize, 1, 2];
            v.sort_unstable();
            v
        });
        assert_eq!(r, vec![1, 2, 3]);
    }

    #[test]
    fn par_do_returns_both() {
        let (a, b) = par_do(|| 21 * 2, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }
}
