//! # parlay — ParlayLib-style parallel primitives for Rust
//!
//! This crate is a from-scratch reproduction of the subset of
//! [ParlayLib](https://github.com/cmuparlay/parlaylib) that the DovetailSort
//! paper (PPoPP 2024) relies on.  All primitives follow the fork-join
//! (binary-forking) model described in the paper's Section 2.2 and are
//! executed by rayon's randomized work-stealing scheduler, which matches the
//! scheduler assumptions of the paper's analysis (`W/P + O(D)` running time).
//!
//! Provided primitives:
//!
//! * [`par::parallel_for`] — granularity-controlled parallel loops.
//! * [`reduce`] — parallel reductions (sum, max, min, monoid reduce).
//! * [`scan`] — sequential and blocked parallel prefix sums.
//! * [`counting_sort`] — the stable blocked counting sort of the paper's
//!   Section 2.4 / Appendix B, the distribution primitive of every MSD sort.
//! * [`merge`] — a parallel merge of two sorted sequences (the `PLMerge`
//!   baseline of the paper's Section 6.3).
//! * [`kway`] — a parallel k-way merge (loser tree + stable multi-sequence
//!   selection), the final pass of the out-of-core streaming sorter.
//! * [`flip`] — parallel in-place reversal, used by the dovetail merge.
//! * [`random`] — a deterministic splittable hash-based RNG, so that all
//!   sampling in the sorts is reproducible (Appendix A: determinacy-race
//!   freedom and internal determinism).
//! * [`sample`], [`mod@pack`], [`binsearch`], [`mod@slice`] — sampling,
//!   parallel pack/filter, branchless binary search, and the
//!   unsafe-but-checked disjoint-write slice cell that underpins parallel
//!   scatters.
//! * [`scatter`] — stable parallel scatter by arbitrary or hashed bucket
//!   ids, the distribution primitive of the semisort engine.

pub mod binsearch;
pub mod counting_sort;
pub mod flip;
pub mod histogram;
pub mod kway;
pub mod merge;
pub mod pack;
pub mod par;
pub mod random;
pub mod reduce;
pub mod sample;
pub mod scan;
pub mod scatter;
pub mod seq;
pub mod slice;

pub use binsearch::{lower_bound, lower_bound_by, upper_bound, upper_bound_by};
pub use counting_sort::{counting_sort_by, counting_sort_inplace_by, CountingSortPlan};
pub use flip::{par_reverse, par_rotate_left};
pub use histogram::{histogram, top_k_frequent};
pub use kway::{kway_merge_by, kway_merge_into, LoserTree, RunSource, SliceSource};
pub use merge::{par_merge_by, par_merge_into};
pub use pack::{pack, pack_index, pack_ranges};
pub use par::{num_threads, parallel_for, parallel_for_grained, with_threads};
pub use random::Rng;
pub use reduce::{par_max, par_min, par_reduce, par_sum};
pub use sample::sample_indices;
pub use scan::{scan_exclusive, scan_exclusive_in_place, scan_inclusive};
pub use scatter::{hash_scatter_into, scatter_by};
pub use slice::UnsafeSliceCell;

/// Default granularity (number of elements handled sequentially by one task)
/// used by the primitives when the caller does not override it.
///
/// ParlayLib uses a similar block size (~2048) for its `parallel_for`; the
/// exact value only affects constant factors, not the work/span bounds.
pub const DEFAULT_GRANULARITY: usize = 2048;
