//! Deterministic splittable pseudo-random numbers.
//!
//! ParlayLib's sorts draw all randomness from a hash of `(seed, index)` so
//! that the computation is internally deterministic (paper Appendix A): the
//! i-th random number does not depend on scheduling.  We reproduce that with
//! a SplitMix64-style finalizer, which is statistically strong enough for
//! sampling and is extremely cheap.

/// A deterministic, splittable random number generator.
///
/// `Rng` is `Copy`: "child" generators for subproblems are derived with
/// [`Rng::fork`], and the `i`-th number of a generator is obtained with
/// [`Rng::ith`], independent of evaluation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rng {
    seed: u64,
}

/// SplitMix64 finalizer: a bijective mixing function on 64-bit integers.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed: hash64(seed) }
    }

    /// Derives an independent child generator identified by `id`
    /// (e.g. the recursion path of a subproblem).
    pub fn fork(self, id: u64) -> Self {
        Self {
            seed: hash64(self.seed ^ hash64(id.wrapping_add(0xA5A5_5A5A_DEAD_BEEF))),
        }
    }

    /// The `i`-th 64-bit pseudo-random number of this generator.
    #[inline]
    pub fn ith(self, i: u64) -> u64 {
        hash64(
            self.seed
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// The `i`-th pseudo-random number reduced to `0..bound` (bound > 0).
    #[inline]
    pub fn ith_in(self, i: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift reduction avoids the modulo bias being
        // concentrated on low values and is faster than `%`.
        ((self.ith(i) as u128 * bound as u128) >> 64) as u64
    }

    /// The `i`-th pseudo-random `f64` in `[0, 1)`.
    #[inline]
    pub fn ith_f64(self, i: u64) -> f64 {
        // 53 random mantissa bits.
        (self.ith(i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_independent() {
        let r = Rng::new(42);
        let a: Vec<u64> = (0..100).map(|i| r.ith(i)).collect();
        let b: Vec<u64> = (0..100).rev().map(|i| r.ith(i)).collect();
        let b_rev: Vec<u64> = b.into_iter().rev().collect();
        assert_eq!(a, b_rev);
    }

    #[test]
    fn fork_gives_different_streams() {
        let r = Rng::new(7);
        let c1 = r.fork(1);
        let c2 = r.fork(2);
        assert_ne!(c1.ith(0), c2.ith(0));
        assert_ne!(r.ith(0), c1.ith(0));
    }

    #[test]
    fn bounded_values_in_range_and_spread() {
        let r = Rng::new(123);
        let bound = 97u64;
        let mut seen = vec![false; bound as usize];
        for i in 0..10_000 {
            let v = r.ith_in(i, bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        // With 10k draws over 97 buckets, every bucket should be hit.
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_with_reasonable_mean() {
        let r = Rng::new(9);
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let x = r.ith_f64(i);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn hash64_is_injective_on_small_range() {
        use std::collections::HashSet;
        let set: HashSet<u64> = (0..100_000u64).map(hash64).collect();
        assert_eq!(set.len(), 100_000);
    }
}
