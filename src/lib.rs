//! # pisort — umbrella crate of the DovetailSort (PPoPP 2024) reproduction
//!
//! This crate re-exports the whole workspace under one roof so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`dtsort`] — DovetailSort, the paper's contribution (stable parallel
//!   integer sort with heavy-key detection and dovetail merging).
//! * [`parlay`] — the ParlayLib-style parallel-primitives substrate.
//! * [`baselines`] — the comparison sorting algorithms of the evaluation.
//! * [`workloads`] — synthetic key distributions, graphs and point clouds.
//! * [`apps`] — graph transpose, Morton sort and group-by applications.
//! * [`semisort`] — the heavy-key semisort / group-by engine: equal keys
//!   grouped contiguously without a total order, plus the [`GroupBy`]
//!   aggregation API.
//! * [`obs`] — zero-dependency tracing and metrics: named counters /
//!   gauges / latency histograms in a global registry, plus lightweight
//!   spans exportable as a chrome://tracing file.  Off by default; enabled
//!   by [`StreamConfig::trace`](dtsort::StreamConfig) or `OBS_TRACE=1`.
//! * [`stream`] — bounded-memory streaming / out-of-core sorting
//!   ([`StreamSorter`]): pushed batches become spilled sorted runs that are
//!   k-way merged, with heavy keys carried across runs — and streaming
//!   group-by ([`StreamGroupBy`]), which aggregates runs before spilling.
//! * [`server`] — the multi-session sort service: sessions over the
//!   streaming engines, arbitrated by a global memory governor (admission
//!   control, proportional grants, live reclaim) and a shared
//!   quota-governed spill-directory manager.
//!
//! ```
//! // The most common entry point: stably sort key-value records.
//! let mut records = vec![(30u32, 'c'), (10, 'a'), (30, 'b'), (20, 'd')];
//! pisort::sort_pairs(&mut records);
//! assert_eq!(records, vec![(10, 'a'), (20, 'd'), (30, 'c'), (30, 'b')]);
//! ```

pub use apps;
pub use baselines;
pub use dtsort;
pub use obs;
pub use parlay;
pub use semisort;
pub use server;
pub use stream;
pub use workloads;

// Convenience re-exports of the primary API.
pub use dtsort::{
    sort, sort_by_key, sort_by_key_with, sort_by_key_with_stats, sort_pairs, sort_pairs_with,
    sort_pairs_with_stats, sort_with, sort_with_stats, IntegerKey, MergeStrategy, SortConfig,
    StatsSnapshot, StreamConfig,
};
pub use semisort::{semisort_by_key, semisort_pairs, GroupBy, SemisortConfig};
pub use stream::{
    SortedStream, SpillCompression, StreamGroupBy, StreamSorter, StringKey, StringStreamGroupBy,
    StringStreamSorter,
};
