//! Property-based tests (proptest) of the core invariants:
//!
//! * every sort produces a non-decreasing permutation of its input;
//! * stable sorts equal the standard library's stable sort exactly;
//! * the dovetail merge equals a reference merge;
//! * the counting sort equals a stable sort by bucket id;
//! * the parallel merge equals the sequential merge;
//! * Morton codes compare exactly like bit-interleaved coordinates.

use proptest::collection::vec;
use proptest::prelude::*;

fn reference_pairs(input: &[(u32, u16)]) -> Vec<(u32, u16)> {
    let mut want = input.to_vec();
    want.sort_by_key(|r| r.0);
    want
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dtsort_equals_std_stable_sort(
        keys in vec(any::<u32>(), 0..3000),
        small_keys in vec(0u32..16, 0..3000),
    ) {
        // Wide keys (few duplicates) and narrow keys (heavy duplicates).
        for keyset in [keys, small_keys] {
            let input: Vec<(u32, u16)> = keyset.iter().enumerate()
                .map(|(i, &k)| (k, i as u16)).collect();
            let mut got = input.clone();
            // A small base case so the radix path is exercised even for
            // modest proptest input sizes.
            let cfg = dtsort::SortConfig { base_case_threshold: 32, ..Default::default() };
            dtsort::sort_pairs_with(&mut got, &cfg);
            prop_assert_eq!(got, reference_pairs(&input));
        }
    }

    #[test]
    fn dtsort_by_key_signed(keys in vec(any::<i64>(), 0..2000)) {
        let mut got = keys.clone();
        dtsort::sort(&mut got);
        let mut want = keys;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn baselines_sort_correctly(keys in vec(any::<u32>(), 0..2000)) {
        let input: Vec<(u32, u16)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u16)).collect();
        let want = reference_pairs(&input);
        let want_keys: Vec<u32> = want.iter().map(|r| r.0).collect();

        let mut plis = input.clone();
        baselines::plis::sort_by_key_with(&mut plis, |r| r.0,
            &baselines::plis::PlisConfig { radix_bits: 4, base_case_threshold: 16 });
        prop_assert_eq!(&plis, &want);

        let mut lsd = input.clone();
        baselines::lsd::sort_pairs(&mut lsd);
        prop_assert_eq!(&lsd, &want);

        let mut ss = input.clone();
        baselines::samplesort::sort_by_key_with(&mut ss, |r| r.0,
            &baselines::samplesort::SampleSortConfig { num_buckets: 8, base_case_threshold: 16, oversample: 4, seed: 1 });
        prop_assert_eq!(&ss, &want);

        let mut ipr = input.clone();
        baselines::inplace_radix::sort_by_key_with(&mut ipr, |r| r.0,
            &baselines::inplace_radix::InplaceRadixConfig { radix_bits: 4, base_case_threshold: 16 });
        let ipr_keys: Vec<u32> = ipr.iter().map(|r| r.0).collect();
        prop_assert_eq!(ipr_keys, want_keys);
    }

    #[test]
    fn counting_sort_is_a_stable_bucket_sort(
        records in vec((0u8..32, any::<u16>()), 0..4000),
        extra_buckets in 0usize..8,
    ) {
        let num_buckets = 32 + extra_buckets;
        let mut dst = vec![(0u8, 0u16); records.len()];
        let plan = parlay::counting_sort::counting_sort_by(
            &records, &mut dst, num_buckets, |r| r.0 as usize);
        let mut want = records.clone();
        want.sort_by_key(|r| r.0);
        prop_assert_eq!(dst, want);
        prop_assert_eq!(*plan.bucket_offsets.last().unwrap(), records.len());
        // Offsets are monotone.
        prop_assert!(plan.bucket_offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parallel_merge_equals_std_merge(
        mut a in vec(any::<u32>(), 0..2000),
        mut b in vec(any::<u32>(), 0..2000),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let got = parlay::merge::par_merge_by(&a, &b, &|x, y| x < y);
        let mut want = [a, b].concat();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dovetail_merge_equals_reference(
        light_raw in vec(0u64..500, 0..400),
        heavy_spec in vec((0u64..500, 1usize..40), 0..5),
    ) {
        // Light keys must exclude the heavy keys (the algorithm guarantees
        // disjointness); heavy keys must be distinct.
        let mut heavy_keys: Vec<u64> = heavy_spec.iter().map(|&(k, _)| k * 2 + 1).collect();
        heavy_keys.sort_unstable();
        heavy_keys.dedup();
        let mut light: Vec<(u64, u32)> = light_raw.iter().enumerate()
            .map(|(i, &k)| (k * 2, i as u32)).collect();
        light.sort_by_key(|r| r.0);
        let mut tag = 10_000u32;
        let heavy: Vec<(u64, Vec<(u64, u32)>)> = heavy_keys.iter().map(|&k| {
            let cnt = heavy_spec.iter().find(|&&(hk, _)| hk * 2 + 1 == k).map(|&(_, c)| c).unwrap_or(1);
            let recs: Vec<(u64, u32)> = (0..cnt).map(|_| { tag += 1; (k, tag) }).collect();
            (k, recs)
        }).collect();

        // Reference: stable sort of the concatenation.
        let mut all: Vec<(u64, u32)> = light.clone();
        for (_, h) in &heavy { all.extend_from_slice(h); }
        let mut want = all.clone();
        want.sort_by_key(|r| r.0);

        // Cross-buffer merge.
        let heavy_slices: Vec<(u64, &[(u64, u32)])> =
            heavy.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let mut dst = vec![(0u64, 0u32); all.len()];
        dtsort::dtmerge::dovetail_merge_across(&light, &heavy_slices, &mut dst, &|r: &(u64, u32)| r.0);
        prop_assert_eq!(&dst, &want);

        // In-place merge (Alg. 3).
        let mut zone = all;
        let lens: Vec<usize> = heavy.iter().map(|(_, v)| v.len()).collect();
        dtsort::dtmerge::dovetail_merge_in_place(&mut zone, light.len(), &lens, &|r: &(u64, u32)| r.0);
        prop_assert_eq!(&zone, &want);
    }

    #[test]
    fn scan_and_pack_invariants(values in vec(0usize..50, 0..5000)) {
        let (prefix, total) = parlay::scan::scan_exclusive(&values);
        prop_assert_eq!(total, values.iter().sum::<usize>());
        prop_assert_eq!(prefix.len(), values.len());
        for i in 1..values.len() {
            prop_assert_eq!(prefix[i], prefix[i - 1] + values[i - 1]);
        }
        let evens = parlay::pack::pack(&values, |&x| x % 2 == 0);
        let want: Vec<usize> = values.iter().copied().filter(|&x| x % 2 == 0).collect();
        prop_assert_eq!(evens, want);
    }

    #[test]
    fn morton_codes_order_matches_interleaving(
        pts in vec((any::<u32>(), any::<u32>()), 0..500),
    ) {
        // Sorting by morton2 must equal sorting by the bit-interleaved
        // big-integer comparison (reference: compare y-then-x bit by bit from
        // the top, taking the higher differing interleaved bit).
        let mut by_code: Vec<(u32, u32)> = pts.clone();
        by_code.sort_by_key(|&(x, y)| apps::morton::morton2(x, y));
        let mut by_ref = pts;
        by_ref.sort_by(|&(ax, ay), &(bx, by)| {
            let ka = apps::morton::morton2(ax, ay);
            let kb = apps::morton::morton2(bx, by);
            ka.cmp(&kb)
        });
        let codes_a: Vec<u64> = by_code.iter().map(|&(x, y)| apps::morton::morton2(x, y)).collect();
        let codes_b: Vec<u64> = by_ref.iter().map(|&(x, y)| apps::morton::morton2(x, y)).collect();
        prop_assert_eq!(codes_a, codes_b);
    }

    #[test]
    fn group_by_key_partitions_the_input(keys in vec(0u64..64, 0..3000)) {
        let mut records: Vec<(u64, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let groups = apps::groupby::group_by_key(&mut records);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, records.len());
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            prop_assert!(seen.insert(g.key), "duplicate group key");
            prop_assert!(records[g.start..g.end].iter().all(|&(k, _)| k == g.key));
        }
    }

    #[test]
    fn zipf_sampler_stays_in_range(n in 1u64..10_000, s in 0.0f64..3.0, u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let z = workloads::zipf::ZipfSampler::new(n, s);
        let r = z.sample(u1, u2);
        prop_assert!((1..=n).contains(&r));
    }
}
