//! Multi-tenant differential suite: N interleaved sessions over one shared
//! [`SortServer`] must be **byte-identical** to solo [`StreamSorter`] runs.
//!
//! The server changes *everything about the schedule* — sessions share the
//! work-stealing pool, their grants shrink live as peers are admitted (so
//! run boundaries land in different places than any solo run), and all
//! spill files live under one managed root.  None of that may leak into
//! the output: a stable external sort's result is a pure function of the
//! input, never of the run partitioning or the interleaving.  Each case in
//! this suite pushes the same inputs through (a) plain solo sorters with a
//! fixed budget and (b) a crowded server with reclaim-inducing admissions,
//! and asserts the outputs are identical, across the sync/pipelined spill
//! paths and both spill codecs.
//!
//! Thread counts: CI re-runs this suite under `RAYON_NUM_THREADS ∈ {1, 4}`
//! (the thread-matrix job), which covers schedule-dependence of the shared
//! pool at both concurrency levels.

use dtsort::{SortConfig, StreamConfig};
use server::{
    AdmissionPolicy, GovernorConfig, ServerConfig, SessionError, SortServer, SpillManagerConfig,
};
use stream::{FaultKind, FaultPlan, SpillCompression, SpillIoMode, StreamSorter, SumAgg};
use workloads::dist::{generate_pairs_u32, paper_instances};

/// Sessions per scenario — enough that admissions force several reclaims.
const SESSIONS: usize = 6;
/// Records per session.
const N: usize = 12_000;
/// Interleave granularity (odd, so chunk boundaries drift across runs).
const CHUNK: usize = 499;

/// The spill-path matrix: sync/pipelined × spill codec.
fn spill_modes() -> Vec<(&'static str, bool, SpillCompression)> {
    vec![
        ("sync/off", true, SpillCompression::Off),
        ("sync/delta-lz", true, SpillCompression::DeltaLz),
        ("pipelined/off", false, SpillCompression::Off),
        ("pipelined/delta-lz", false, SpillCompression::DeltaLz),
    ]
}

/// One input per session, drawn from distinct paper distributions so the
/// sessions stress different code paths (uniform, skewed, heavy keys).
fn session_inputs() -> Vec<Vec<(u32, u32)>> {
    let dists = paper_instances();
    (0..SESSIONS)
        .map(|s| {
            let dist = &dists[s % dists.len()];
            generate_pairs_u32(dist, N, 0xD7_5EED ^ (s as u64))
        })
        .collect()
}

/// A small base config that spills aggressively at test sizes.
fn base_config(synchronous: bool, codec: SpillCompression) -> StreamConfig {
    StreamConfig {
        synchronous_spill: synchronous,
        spill_compression: codec,
        sort: SortConfig {
            base_case_threshold: 64,
            ..SortConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// Solo reference: one engine per input, fixed private budget, default
/// (per-engine) spill directory.
fn solo_outputs(
    inputs: &[Vec<(u32, u32)>],
    synchronous: bool,
    codec: SpillCompression,
) -> Vec<Vec<(u32, u32)>> {
    inputs
        .iter()
        .map(|input| {
            let mut cfg = base_config(synchronous, codec);
            cfg.memory_budget_bytes = 32 << 10;
            let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
            for chunk in input.chunks(CHUNK) {
                sorter.push(chunk).unwrap();
            }
            sorter.finish().unwrap().collect()
        })
        .collect()
}

/// Shared-server run: all sessions admitted up front (each admission
/// reclaims budget from the live ones), pushes interleaved round-robin.
fn server_outputs(
    inputs: &[Vec<(u32, u32)>],
    synchronous: bool,
    codec: SpillCompression,
) -> Vec<Vec<(u32, u32)>> {
    let server = SortServer::new(ServerConfig {
        governor: GovernorConfig {
            // Tight ceiling: sessions are granted far less than requested
            // and each admission shrinks every live grant.
            global_budget_bytes: SESSIONS * (24 << 10),
            session_floor_bytes: 8 << 10,
            admission: AdmissionPolicy::Reject,
        },
        spill: SpillManagerConfig::default(),
        base: base_config(synchronous, codec),
    })
    .unwrap();

    let mut sessions: Vec<_> = (0..inputs.len())
        .map(|s| {
            server
                .open_sort::<u32, u32>(&format!("tenant-{s}"), 64 << 10)
                .unwrap()
        })
        .collect();
    assert!(
        server.governor().reclaims() > 0,
        "crowding the governor must have reclaimed at least one grant"
    );

    // Round-robin interleave: session 0's chunk 0, session 1's chunk 0, …
    let max_chunks = inputs
        .iter()
        .map(|i| i.len().div_ceil(CHUNK))
        .max()
        .unwrap();
    for c in 0..max_chunks {
        for (s, input) in inputs.iter().enumerate() {
            let lo = c * CHUNK;
            if lo < input.len() {
                let hi = (lo + CHUNK).min(input.len());
                sessions[s].push(&input[lo..hi]).unwrap();
            }
        }
    }

    let outputs: Vec<Vec<(u32, u32)>> = sessions
        .into_iter()
        .map(|s| s.finish().unwrap().collect())
        .collect();
    assert_eq!(server.governor().live_sessions(), 0);
    assert_eq!(server.spill_manager().charged_bytes(), 0);
    outputs
}

#[test]
fn interleaved_sessions_match_solo_runs_across_spill_modes() {
    let inputs = session_inputs();
    for (mode, synchronous, codec) in spill_modes() {
        let want = solo_outputs(&inputs, synchronous, codec);
        let got = server_outputs(&inputs, synchronous, codec);
        for (s, (got_s, want_s)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                got_s, want_s,
                "session {s} output differs from its solo run [{mode}]"
            );
        }
    }
}

/// The same differential claim for the group-by engine: interleaved
/// [`server::GroupSession`]s must aggregate identically to solo runs
/// (exercised on one representative spill mode; the sorter matrix above
/// covers the codec/pipeline axes).
#[test]
fn interleaved_group_sessions_match_solo_runs() {
    let inputs = session_inputs();
    let server = SortServer::new(ServerConfig {
        governor: GovernorConfig {
            global_budget_bytes: SESSIONS * (24 << 10),
            session_floor_bytes: 8 << 10,
            admission: AdmissionPolicy::Reject,
        },
        spill: SpillManagerConfig::default(),
        base: base_config(false, SpillCompression::DeltaLz),
    })
    .unwrap();
    let mut sessions: Vec<_> = (0..inputs.len())
        .map(|s| {
            server
                .open_group::<u32, SumAgg>(&format!("tenant-{s}"), SumAgg, 64 << 10)
                .unwrap()
        })
        .collect();
    let max_chunks = inputs
        .iter()
        .map(|i| i.len().div_ceil(CHUNK))
        .max()
        .unwrap();
    for c in 0..max_chunks {
        for (s, input) in inputs.iter().enumerate() {
            let lo = c * CHUNK;
            if lo < input.len() {
                let hi = (lo + CHUNK).min(input.len());
                for &(k, v) in &input[lo..hi] {
                    sessions[s].push_record(k, v as u64).unwrap();
                }
            }
        }
    }
    for (s, (session, input)) in sessions.into_iter().zip(&inputs).enumerate() {
        let got = session.finish_vec().unwrap();
        // Solo reference: an in-memory sum per key, emitted in key order.
        let mut want = std::collections::BTreeMap::new();
        for &(k, v) in input {
            *want.entry(k).or_insert(0u64) += v as u64;
        }
        let want: Vec<(u32, u64)> = want.into_iter().collect();
        assert_eq!(got, want, "group session {s} differs from solo aggregation");
    }
}

/// Cross-session fault isolation over the shared **batched** backend:
///
/// * session A gets a one-shot injected spill-write panic — the writer
///   thread catches it, the run is reclaimed and rewritten, and A's
///   output is byte-identical (a worker panic in one session must not
///   poison the shared [`stream::SpillIoHandle`] pool);
/// * session C gets a dense permanent ENOSPC plan — it fails loudly with
///   a typed [`SessionError`] naming its own tenant, kind preserved;
/// * clean session B, interleaved with both, stays byte-identical to a
///   solo run, and every lease/grant is reclaimed after the drops.
#[test]
fn faulted_sessions_stay_isolated_from_clean_peers() {
    let inputs = session_inputs();
    let (input_a, input_b, input_c) = (&inputs[0], &inputs[1], &inputs[2]);
    let sorted = |input: &[(u32, u32)]| {
        let mut want = input.to_vec();
        want.sort_by_key(|r| r.0);
        want
    };

    let server = SortServer::new(ServerConfig {
        governor: GovernorConfig {
            global_budget_bytes: 3 * (24 << 10),
            session_floor_bytes: 8 << 10,
            admission: AdmissionPolicy::Reject,
        },
        spill: SpillManagerConfig::default(),
        base: StreamConfig {
            spill_io: SpillIoMode::Batched,
            spill_io_workers: 2,
            spill_io_queue_depth: 8,
            ..base_config(false, SpillCompression::Off)
        },
    })
    .unwrap();

    let panic_plan = FaultPlan::nth(FaultKind::WritePanic, 1);
    let mut a = server
        .open_sort_with_faults::<u32, u32>("tenant-a", 64 << 10, panic_plan.clone())
        .unwrap();
    let mut b = server.open_sort::<u32, u32>("tenant-b", 64 << 10).unwrap();
    let enospc_plan = FaultPlan::seeded_kinds(0xBAD_5EED, 2, &[FaultKind::WriteEnospc]);
    let mut c = server
        .open_sort_with_faults::<u32, u32>("tenant-c", 64 << 10, enospc_plan)
        .unwrap();

    // Round-robin interleave.  A's single loud error (the caught writer
    // panic) is tolerated and pushing continues; C stops at its first
    // (permanent) error; B must never error.
    let mut a_errors = 0usize;
    let mut c_error: Option<std::io::Error> = None;
    let max_chunks = inputs[..3]
        .iter()
        .map(|i| i.len().div_ceil(CHUNK))
        .max()
        .unwrap();
    for chunk in 0..max_chunks {
        let lo = chunk * CHUNK;
        let hi = (lo + CHUNK).min(N);
        if lo >= N {
            break;
        }
        if let Err(e) = a.push(&input_a[lo..hi]) {
            assert!(
                e.to_string().contains("panicked"),
                "A's only error must be the converted writer panic: {e}"
            );
            a_errors += 1;
        }
        b.push(&input_b[lo..hi])
            .expect("the clean session must never see a peer's fault");
        if c_error.is_none() {
            if let Err(e) = c.push(&input_c[lo..hi]) {
                c_error = Some(e);
            }
        }
    }

    assert_eq!(panic_plan.injected(), 1, "A's panic fault must have fired");
    assert!(a_errors <= 1, "the caught panic surfaces at most once");
    let got_a = a.finish_vec().expect("A recovers after the caught panic");
    assert_eq!(
        got_a,
        sorted(input_a),
        "worker panic must not cost session A a record"
    );

    let err = c_error.expect("the dense ENOSPC plan must fail session C");
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::StorageFull,
        "kind preserved"
    );
    let session_err = SessionError::from_io(&err).expect("typed SessionError");
    assert_eq!(session_err.tenant, "tenant-c", "failure names its session");
    drop(c);

    let got_b: Vec<(u32, u32)> = b.finish().unwrap().collect();
    assert_eq!(
        got_b,
        sorted(input_b),
        "session B must be byte-identical despite faulted neighbors"
    );

    assert_eq!(server.governor().live_sessions(), 0, "grants reclaimed");
    assert_eq!(server.spill_manager().live_leases(), 0, "leases reclaimed");
    assert_eq!(
        server.spill_manager().charged_bytes(),
        0,
        "charges released"
    );
}
