//! End-to-end integration tests of the applications (graph transpose,
//! Morton sort, group-by) across the whole crate stack: workload generators
//! → DovetailSort / baselines → application logic.

use apps::transpose::{transpose, transpose_reference, transpose_with_sorter};
use workloads::graphs::{power_law_graph, table4_graphs, Csr};
use workloads::points::{trace_points_2d, uniform_points_3d, varden_points_2d, VardenConfig};

#[test]
fn transpose_every_table4_stand_in_graph() {
    for (label, edges) in table4_graphs(0.02, 3) {
        let g = Csr::from_unsorted_edges(edges.num_vertices, &edges.edges);
        let got = transpose(&g);
        let want = transpose_reference(&g);
        assert_eq!(got, want, "transpose mismatch on {label}");
        assert_eq!(got.num_edges(), g.num_edges(), "{label}");
    }
}

#[test]
fn transpose_preserves_edge_multiset_and_orders_sources() {
    let e = power_law_graph(5_000, 80_000, 1.3, 9);
    let g = Csr::from_unsorted_edges(e.num_vertices, &e.edges);
    let gt = transpose(&g);
    // Every edge (u, v) of G appears as (v, u) in G^T.
    let mut orig: Vec<(u32, u32)> = g.to_edges();
    let mut flipped: Vec<(u32, u32)> = gt.to_edges().iter().map(|&(v, u)| (u, v)).collect();
    orig.sort_unstable();
    flipped.sort_unstable();
    assert_eq!(orig, flipped);
    // Within each transposed neighbour list, sources appear in increasing
    // order because the original CSR lists edges grouped by increasing
    // source and the sort is stable.
    for v in 0..gt.num_vertices() {
        let nb = gt.neighbors(v);
        assert!(nb.windows(2).all(|w| w[0] <= w[1]), "vertex {v}");
    }
}

#[test]
fn morton_sort_all_point_generators() {
    let cfg = VardenConfig::default();
    let clouds2d = vec![
        ("varden", varden_points_2d(40_000, &cfg, 1)),
        ("trace", trace_points_2d(40_000, 100, 2)),
    ];
    for (label, pts) in clouds2d {
        let sorted = apps::morton::morton_sort_2d(&pts);
        let zs: Vec<u64> = sorted
            .iter()
            .map(|p| apps::morton::morton2(p.x, p.y))
            .collect();
        assert!(
            zs.windows(2).all(|w| w[0] <= w[1]),
            "{label} not in z-order"
        );
        assert_eq!(sorted.len(), pts.len());
    }
    let pts3 = uniform_points_3d(30_000, 3);
    let sorted3 = apps::morton::morton_sort_3d(&pts3);
    let zs: Vec<u64> = sorted3
        .iter()
        .map(|p| apps::morton::morton3(p.x, p.y, p.z))
        .collect();
    assert!(zs.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn all_sorters_give_identical_transposes() {
    let e = power_law_graph(3_000, 50_000, 1.2, 4);
    let g = Csr::from_unsorted_edges(e.num_vertices, &e.edges);
    let reference = transpose_reference(&g);
    let via_dtsort = transpose_with_sorter(&g, dtsort::sort_pairs);
    let via_plis = transpose_with_sorter(&g, baselines::plis::sort_pairs);
    let via_lsd = transpose_with_sorter(&g, baselines::lsd::sort_pairs);
    let via_samplesort = transpose_with_sorter(&g, baselines::samplesort::sort_pairs);
    assert_eq!(via_dtsort, reference);
    assert_eq!(via_plis, reference);
    assert_eq!(via_lsd, reference);
    assert_eq!(via_samplesort, reference);
}

#[test]
fn groupby_on_generated_workloads() {
    use workloads::dist::{generate_keys, Distribution};
    let keys = generate_keys(&Distribution::Exponential { lambda: 10.0 }, 60_000, 32, 6);
    let counts = apps::groupby::count_by_key(&keys);
    assert_eq!(counts.iter().map(|&(_, c)| c).sum::<usize>(), keys.len());
    assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
    // Cross-check a few entries against a hash map.
    let mut want = std::collections::HashMap::new();
    for &k in &keys {
        *want.entry(k).or_insert(0usize) += 1;
    }
    for &(k, c) in counts.iter().take(50) {
        assert_eq!(c, want[&k]);
    }
}
