//! Integration tests sweeping DovetailSort's configuration space: every
//! merge strategy, radix-width override, base-case threshold, sampling
//! factor, and the overflow-bucket optimization, on inputs designed to
//! stress each knob.

use dtsort::{MergeStrategy, SortConfig};
use parlay::random::Rng;

fn reference(input: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut want = input.to_vec();
    want.sort_by_key(|r| r.0);
    want
}

fn skewed_input(n: usize, seed: u64) -> Vec<(u64, u32)> {
    // A mix: 40% one hot key, 20% spread over 10 warm keys, 40% random.
    let rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let r = rng.ith_f64(i as u64);
            let k = if r < 0.4 {
                999_999
            } else if r < 0.6 {
                1_000 * (rng.ith_in(i as u64, 10) + 1)
            } else {
                rng.ith(i as u64)
            };
            (k, i as u32)
        })
        .collect()
}

#[test]
fn all_merge_strategies_produce_identical_stable_output() {
    let input = skewed_input(120_000, 1);
    let want = reference(&input);
    for strategy in [
        MergeStrategy::Dovetail,
        MergeStrategy::DovetailInPlace,
        MergeStrategy::ParallelMerge,
    ] {
        let cfg = SortConfig {
            merge_strategy: strategy,
            base_case_threshold: 512,
            ..SortConfig::default()
        };
        let mut data = input.clone();
        dtsort::sort_pairs_with(&mut data, &cfg);
        assert_eq!(data, want, "strategy {strategy:?}");
    }
}

#[test]
fn radix_width_overrides() {
    let input = skewed_input(60_000, 2);
    let want = reference(&input);
    for gamma in [1u32, 2, 4, 6, 10, 14] {
        let cfg = SortConfig {
            radix_bits_override: Some(gamma),
            base_case_threshold: 256,
            ..SortConfig::default()
        };
        let mut data = input.clone();
        dtsort::sort_pairs_with(&mut data, &cfg);
        assert_eq!(data, want, "gamma = {gamma}");
    }
}

#[test]
fn base_case_thresholds() {
    let input = skewed_input(50_000, 3);
    let want = reference(&input);
    for theta in [0usize, 1, 16, 1 << 10, 1 << 20] {
        let cfg = SortConfig {
            base_case_threshold: theta,
            ..SortConfig::default()
        };
        let mut data = input.clone();
        dtsort::sort_pairs_with(&mut data, &cfg);
        assert_eq!(data, want, "theta = {theta}");
    }
}

#[test]
fn overflow_bucket_on_and_off() {
    // Keys with a huge outlier: the sampled range misses it, so the overflow
    // bucket must catch it.
    let rng = Rng::new(4);
    let mut input: Vec<(u64, u32)> = (0..80_000)
        .map(|i| (rng.ith_in(i, 1 << 20), i as u32))
        .collect();
    input[40_000].0 = u64::MAX;
    input[70_001].0 = u64::MAX - 3;
    let want = reference(&input);
    for overflow in [true, false] {
        let cfg = SortConfig {
            overflow_bucket: overflow,
            base_case_threshold: 1024,
            ..SortConfig::default()
        };
        let mut data = input.clone();
        dtsort::sort_pairs_with(&mut data, &cfg);
        assert_eq!(data, want, "overflow_bucket = {overflow}");
    }
}

#[test]
fn sampling_factors_and_seeds() {
    let input = skewed_input(60_000, 5);
    let want = reference(&input);
    for factor in [1usize, 2, 8] {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let cfg = SortConfig {
                sample_factor: factor,
                seed,
                base_case_threshold: 512,
                ..SortConfig::default()
            };
            let mut data = input.clone();
            dtsort::sort_pairs_with(&mut data, &cfg);
            assert_eq!(data, want, "factor {factor}, seed {seed}");
        }
    }
}

#[test]
fn heavy_detection_off_equals_on_in_output() {
    let input = skewed_input(100_000, 6);
    let mut a = input.clone();
    let mut b = input;
    dtsort::sort_pairs_with(&mut a, &SortConfig::default());
    dtsort::sort_pairs_with(&mut b, &SortConfig::plain());
    assert_eq!(a, b);
}

#[test]
fn stats_reflect_configuration() {
    let input = skewed_input(200_000, 7);
    let mut with_heavy = input.clone();
    let snap_heavy = dtsort::sort_pairs_with_stats(&mut with_heavy, &SortConfig::default());
    assert!(snap_heavy.heavy_keys > 0);
    assert!(snap_heavy.heavy_records > 50_000);

    let mut plain = input.clone();
    let snap_plain = dtsort::sort_pairs_with_stats(&mut plain, &SortConfig::plain());
    assert_eq!(snap_plain.heavy_keys, 0);
    assert_eq!(snap_plain.heavy_records, 0);
    // Plain must distribute at least as much data through the recursion.
    assert!(snap_plain.distributed_records >= snap_heavy.distributed_records);

    // Skip-merge moves fewer records than the full algorithm.
    let mut skipped = input;
    let snap_skip = dtsort::sort_pairs_with_stats(
        &mut skipped,
        &SortConfig {
            merge_strategy: MergeStrategy::Skip,
            ..SortConfig::default()
        },
    );
    assert!(snap_skip.merged_records <= snap_heavy.merged_records);
}

#[test]
fn tiny_radix_on_64_bit_keys_terminates() {
    // γ = 1 on 64-bit keys gives the deepest possible recursion (64 levels).
    let rng = Rng::new(8);
    let mut data: Vec<(u64, u32)> = (0..40_000).map(|i| (rng.ith(i), i as u32)).collect();
    let want = reference(&data);
    let cfg = SortConfig {
        radix_bits_override: Some(1),
        base_case_threshold: 64,
        ..SortConfig::default()
    };
    dtsort::sort_pairs_with(&mut data, &cfg);
    assert_eq!(data, want);
}
