//! Differential testing harness: every sorter against every distribution.
//!
//! A seeded generator sweeps all synthetic distributions of the paper's
//! evaluation (`workloads::dist`) across every registered sorter — the
//! seven baselines, DovetailSort (default and "Plain"), and the semisort
//! engine — and asserts pairwise agreement on the output:
//!
//! * stable sorters must produce the *identical* stable permutation;
//! * unstable sorters must produce the same key sequence and a permutation
//!   of the input records;
//! * semisort must produce the same grouped partition (same distinct keys,
//!   same per-key record multisets, input order within each group).
//!
//! Every case is generated from a deterministic seed derived from the
//! distribution index, and the seed is part of every assertion message, so
//! a failure is reproducible from the log alone.

use workloads::dist::{bexp_instances, generate_pairs_u32, paper_instances, Distribution};

/// One registered sorter of the differential matrix.
struct NamedSorter {
    name: &'static str,
    stable: bool,
    run: fn(&mut [(u32, u32)]),
}

fn registered_sorters() -> Vec<NamedSorter> {
    fn dtsort_default(d: &mut [(u32, u32)]) {
        dtsort::sort_pairs(d);
    }
    fn dtsort_plain(d: &mut [(u32, u32)]) {
        dtsort::sort_pairs_with(d, &dtsort::SortConfig::plain());
    }
    fn plis(d: &mut [(u32, u32)]) {
        baselines::plis::sort_pairs(d);
    }
    fn lsd(d: &mut [(u32, u32)]) {
        baselines::lsd::sort_pairs(d);
    }
    fn samplesort(d: &mut [(u32, u32)]) {
        baselines::samplesort::sort_pairs(d);
    }
    fn mergesort(d: &mut [(u32, u32)]) {
        baselines::mergesort::sort_pairs(d);
    }
    fn quicksort(d: &mut [(u32, u32)]) {
        baselines::quicksort::sort_pairs(d);
    }
    fn inplace_radix(d: &mut [(u32, u32)]) {
        baselines::inplace_radix::sort_pairs(d);
    }
    fn par_std(d: &mut [(u32, u32)]) {
        baselines::stdsort::par_unstable_by_key(d, |r| r.0);
    }
    vec![
        NamedSorter {
            name: "dtsort",
            stable: true,
            run: dtsort_default,
        },
        NamedSorter {
            name: "dtsort-plain",
            stable: true,
            run: dtsort_plain,
        },
        NamedSorter {
            name: "plis",
            stable: true,
            run: plis,
        },
        NamedSorter {
            name: "lsd",
            stable: true,
            run: lsd,
        },
        NamedSorter {
            name: "samplesort",
            stable: true,
            run: samplesort,
        },
        NamedSorter {
            name: "mergesort",
            stable: true,
            run: mergesort,
        },
        NamedSorter {
            name: "quicksort",
            stable: false,
            run: quicksort,
        },
        NamedSorter {
            name: "inplace-radix",
            stable: false,
            run: inplace_radix,
        },
        NamedSorter {
            name: "par-stdsort",
            stable: false,
            run: par_std,
        },
    ]
}

fn all_instances() -> Vec<Distribution> {
    let mut v = paper_instances();
    v.extend(bexp_instances());
    v
}

const N: usize = 10_000;

/// Derives the deterministic generator seed of one (distribution, sweep)
/// case; logged on every failure for standalone reproduction.
fn case_seed(dist_index: usize) -> u64 {
    0xD1FF_0000 + dist_index as u64
}

#[test]
fn all_sorters_agree_on_all_distributions() {
    let sorters = registered_sorters();
    for (di, dist) in all_instances().iter().enumerate() {
        let seed = case_seed(di);
        let input = generate_pairs_u32(dist, N, seed);
        // The reference stable permutation, from the std library sort.
        let mut want_stable = input.clone();
        want_stable.sort_by_key(|r| r.0);
        let want_keys: Vec<u32> = want_stable.iter().map(|r| r.0).collect();
        // The reference record multiset (input order irrelevant).
        let mut want_perm = input.clone();
        want_perm.sort_unstable();

        for s in &sorters {
            let ctx = format!("sorter={} dist={} seed={seed} n={N}", s.name, dist.label());
            let mut got = input.clone();
            (s.run)(&mut got);
            if s.stable {
                assert_eq!(got, want_stable, "stable permutation mismatch [{ctx}]");
            } else {
                let keys: Vec<u32> = got.iter().map(|r| r.0).collect();
                assert_eq!(keys, want_keys, "key sequence mismatch [{ctx}]");
                got.sort_unstable();
                assert_eq!(got, want_perm, "not a permutation of the input [{ctx}]");
            }
        }
    }
}

#[test]
fn semisort_partition_agrees_with_sorted_reference() {
    use std::collections::HashMap;
    for (di, dist) in all_instances().iter().enumerate() {
        let seed = case_seed(di);
        let input = generate_pairs_u32(dist, N, seed);
        let ctx = format!("dist={} seed={seed} n={N}", dist.label());

        // Reference: per-key value sequences in input order, from the
        // stable sort every stable sorter above agreed on.
        let mut sorted = input.clone();
        sorted.sort_by_key(|r| r.0);
        let mut want: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(k, v) in &sorted {
            want.entry(k).or_default().push(v);
        }

        let mut grouped = input.clone();
        let groups = semisort::semisort_pairs(&mut grouped);
        assert_eq!(groups.len(), want.len(), "distinct key count [{ctx}]");
        let mut covered = 0usize;
        for g in &groups {
            let vals: Vec<u32> = grouped[g.start..g.end]
                .iter()
                .map(|&(k, v)| {
                    assert_eq!(k, g.key, "impure group [{ctx}]");
                    v
                })
                .collect();
            assert_eq!(
                Some(&vals),
                want.get(&g.key),
                "group content/order mismatch for key {} [{ctx}]",
                g.key
            );
            covered += g.len();
        }
        assert_eq!(covered, N, "groups must partition the input [{ctx}]");
    }
}

/// The four spill configurations of the format matrix: both encodings
/// (flat reference vs delta-compressed blocks) under both spill modes
/// (synchronous reference vs pipelined writer thread).
fn spill_format_matrix() -> [(stream::SpillCompression, bool); 4] {
    use stream::SpillCompression::{DeltaLz, Off};
    [(Off, true), (Off, false), (DeltaLz, true), (DeltaLz, false)]
}

fn spill_cfg(
    budget: usize,
    compression: stream::SpillCompression,
    synchronous: bool,
) -> dtsort::StreamConfig {
    dtsort::StreamConfig {
        spill_compression: compression,
        synchronous_spill: synchronous,
        ..dtsort::StreamConfig::with_memory_budget(budget)
    }
}

#[test]
fn compressed_spills_are_byte_identical_to_uncompressed_pod() {
    // Pod records through every (encoding, spill-mode) combination must
    // reproduce the std-sort reference exactly; the uncompressed
    // synchronous run is the differential baseline the compressed block
    // format is held to.
    use stream::{SpillCompression, StreamSorter};
    let picks = [
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Zipfian { s: 1.2 },
    ];
    for (di, dist) in picks.iter().enumerate() {
        let seed = case_seed(2000 + di);
        let input = generate_pairs_u32(dist, N, seed);
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);
        for (compression, synchronous) in spill_format_matrix() {
            let ctx = format!(
                "dist={} seed={seed} compression={compression:?} sync={synchronous}",
                dist.label()
            );
            let mut sorter: StreamSorter<u32, u32> =
                StreamSorter::with_config(spill_cfg(16 << 10, compression, synchronous));
            for chunk in input.chunks(777) {
                sorter.push(chunk).unwrap();
            }
            assert!(sorter.stats().spilled_runs > 1, "expected spills [{ctx}]");
            if compression == SpillCompression::DeltaLz {
                let stats = sorter.stats();
                assert!(
                    stats.spilled_bytes < stats.spilled_raw_bytes,
                    "delta blocks must shrink sorted pod runs: {} !< {} [{ctx}]",
                    stats.spilled_bytes,
                    stats.spilled_raw_bytes,
                );
            }
            let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
            assert_eq!(got, want, "spill format divergence [{ctx}]");
        }
    }
}

#[test]
fn compressed_spills_are_byte_identical_to_uncompressed_varlen() {
    // Variable-length values: payload bytes (not just keys) must survive
    // the block framing and LZ round trip bit-for-bit, through both the
    // streaming loser-tree merge and the materializing parallel merge.
    use stream::{SpillCompression, StreamSorter};
    use workloads::generate_string_pairs;
    let dist = Distribution::Zipfian { s: 1.2 };
    let seed = case_seed(3000);
    let input = generate_string_pairs(&dist, N, 32, seed, 0, 96);
    let mut want = input.clone();
    want.sort_by_key(|r| r.0);
    for (compression, synchronous) in spill_format_matrix() {
        let ctx = format!("compression={compression:?} sync={synchronous} seed={seed}");
        let mk = || {
            let mut sorter: StreamSorter<u64, String> =
                StreamSorter::with_config(spill_cfg(64 << 10, compression, synchronous));
            for chunk in input.chunks(777) {
                sorter.push(chunk).unwrap();
            }
            assert!(sorter.stats().spilled_runs > 1, "expected spills [{ctx}]");
            sorter
        };
        let sorter = mk();
        if compression == SpillCompression::DeltaLz {
            let stats = sorter.stats();
            assert!(
                stats.spilled_bytes < stats.spilled_raw_bytes,
                "ASCII payloads must compress: {} !< {} [{ctx}]",
                stats.spilled_bytes,
                stats.spilled_raw_bytes,
            );
        }
        let via_iter: Vec<(u64, String)> = sorter.finish().unwrap().collect();
        assert_eq!(via_iter, want, "varlen spill format divergence [{ctx}]");
        let via_vec = mk().finish_vec().unwrap();
        assert_eq!(via_vec, want, "varlen finish_vec divergence [{ctx}]");
    }
}

#[test]
fn string_keyed_sorter_agrees_with_comparison_sort_across_formats() {
    // String keys ride the u64 merge domain as 8-byte prefixes with
    // full-key tie-breaks; the output must be the exact stable
    // lexicographic permutation under every spill format.  Keys share
    // long prefixes so both the tie-break and the delta encoder are
    // genuinely exercised.
    use stream::StringStreamSorter;
    let seed = case_seed(4000);
    let key_dist = Distribution::Zipfian { s: 1.0 };
    let raw = generate_pairs_u32(&key_dist, N, seed);
    let input: Vec<(String, u32)> = raw
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| {
            (
                format!("t{:02}/shard-{:06}/item", k % 7, k % 4096),
                i as u32,
            )
        })
        .collect();
    let mut want = input.clone();
    want.sort_by(|a, b| a.0.cmp(&b.0));
    for (compression, synchronous) in spill_format_matrix() {
        let ctx = format!("compression={compression:?} sync={synchronous} seed={seed}");
        let mut sorter: StringStreamSorter<String, u32> =
            StringStreamSorter::with_config(spill_cfg(64 << 10, compression, synchronous));
        for chunk in input.chunks(777) {
            sorter.push(chunk).unwrap();
        }
        assert!(sorter.stats().spilled_runs > 1, "expected spills [{ctx}]");
        let got: Vec<(String, u32)> = sorter.finish().unwrap().collect();
        assert_eq!(got, want, "string-key spill format divergence [{ctx}]");
    }
}

#[test]
fn spill_io_backends_produce_identical_output_at_one_and_four_threads() {
    // The batched spill I/O backend is held to the blocking reference the
    // way the compressed format is held to the flat one: pod, varlen and
    // string-keyed records through every (encoding, spill-mode) cell must
    // come out *identical* under both backends, at 1 and 4 worker
    // threads.  Both sides pin `spill_io` explicitly so a CI environment
    // override (`PISORT_SPILL_IO`) cannot collapse the comparison.
    use parlay::par::with_threads;
    use stream::{SpillIoMode, StreamSorter, StringStreamSorter};
    use workloads::generate_string_pairs;
    let seed = case_seed(5000);
    let dist = Distribution::Zipfian { s: 1.2 };
    let pod_input = generate_pairs_u32(&dist, N, seed);
    let var_input = generate_string_pairs(&dist, N, 32, seed, 0, 96);
    let str_input: Vec<(String, u32)> = pod_input
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| {
            (
                format!("t{:02}/shard-{:06}/item", k % 7, k % 4096),
                i as u32,
            )
        })
        .collect();

    let io_cfg = |mode, compression, synchronous| dtsort::StreamConfig {
        spill_io: mode,
        spill_io_workers: 2,
        spill_io_queue_depth: 16,
        ..spill_cfg(32 << 10, compression, synchronous)
    };

    for threads in [1usize, 4] {
        for (compression, synchronous) in spill_format_matrix() {
            let ctx = format!(
                "threads={threads} compression={compression:?} sync={synchronous} seed={seed}"
            );
            with_threads(threads, || {
                let run_pod = |mode| {
                    let mut s: StreamSorter<u32, u32> =
                        StreamSorter::with_config(io_cfg(mode, compression, synchronous));
                    for chunk in pod_input.chunks(777) {
                        s.push(chunk).unwrap();
                    }
                    assert!(s.stats().spilled_runs > 1, "expected spills [{ctx}]");
                    s.finish().unwrap().collect::<Vec<(u32, u32)>>()
                };
                assert_eq!(
                    run_pod(SpillIoMode::Blocking),
                    run_pod(SpillIoMode::Batched),
                    "pod backend divergence [{ctx}]"
                );

                let run_var = |mode| {
                    let mut s: StreamSorter<u64, String> =
                        StreamSorter::with_config(io_cfg(mode, compression, synchronous));
                    for chunk in var_input.chunks(777) {
                        s.push(chunk).unwrap();
                    }
                    assert!(s.stats().spilled_runs > 1, "expected spills [{ctx}]");
                    s.finish().unwrap().collect::<Vec<(u64, String)>>()
                };
                assert_eq!(
                    run_var(SpillIoMode::Blocking),
                    run_var(SpillIoMode::Batched),
                    "varlen backend divergence [{ctx}]"
                );

                let run_str = |mode| {
                    let mut s: StringStreamSorter<String, u32> =
                        StringStreamSorter::with_config(io_cfg(mode, compression, synchronous));
                    for chunk in str_input.chunks(777) {
                        s.push(chunk).unwrap();
                    }
                    assert!(s.stats().spilled_runs > 1, "expected spills [{ctx}]");
                    s.finish().unwrap().collect::<Vec<(String, u32)>>()
                };
                assert_eq!(
                    run_str(SpillIoMode::Blocking),
                    run_str(SpillIoMode::Batched),
                    "string-key backend divergence [{ctx}]"
                );
            });
        }
    }
}

#[test]
fn streaming_sorter_agrees_with_in_memory_sort() {
    // The streaming path (spilled runs + k-way merge) against the same
    // reference, on the heaviest and lightest instance of each family.
    use stream::StreamSorter;
    let picks = [
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Zipfian { s: 1.5 },
        Distribution::Exponential { lambda: 10.0 },
        Distribution::BitExponential { t: 300.0 },
    ];
    for (di, dist) in picks.iter().enumerate() {
        let seed = case_seed(1000 + di);
        let input = generate_pairs_u32(dist, N, seed);
        let ctx = format!("dist={} seed={seed} n={N}", dist.label());
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);

        let mut sorter: StreamSorter<u32, u32> =
            StreamSorter::with_config(dtsort::StreamConfig::with_memory_budget(16 << 10));
        for chunk in input.chunks(777) {
            sorter.push(chunk).unwrap();
        }
        assert!(sorter.stats().spilled_runs > 1, "expected spills [{ctx}]");
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        assert_eq!(got, want, "stream/in-memory divergence [{ctx}]");
    }
}
