//! Thread-count determinism matrix: the differential-suite coverage
//! (distribution sweep × sorters × semisort × streaming, plus the k-way /
//! stream boundary cases of the edge suite) re-run at every thread count
//! in `{1, 4}`, asserting **byte-identical** output across counts.
//!
//! Every parallel primitive in the workspace writes through precomputed
//! disjoint offsets and all sampling is seeded, so the output of every
//! sorter must be a pure function of the input — never of the schedule.
//! Under the work-stealing pool this is the test that proves it: a worker
//! count of 4 on any host exercises stealing, parking and run-ahead, and
//! any scheduling-dependent behaviour shows up as a diff against the
//! 1-thread run.
//!
//! CI additionally runs the *whole* workspace test suite under
//! `RAYON_NUM_THREADS ∈ {1, 4}`, which covers the suites this file cannot
//! re-enter (they use the global pool).

use parlay::par::with_threads;
use workloads::dist::{bexp_instances, generate_pairs_u32, paper_instances, Distribution};

/// The thread counts of the matrix.
const THREADS: [usize; 2] = [1, 4];
const N: usize = 10_000;

fn all_instances() -> Vec<Distribution> {
    let mut v = paper_instances();
    v.extend(bexp_instances());
    v
}

/// Runs `f` on a clone of `input` under each thread count and asserts the
/// outputs are byte-identical across counts (the 1-thread run is the
/// reference).
fn assert_thread_count_invariant<F>(input: &[(u32, u32)], ctx: &str, f: F)
where
    F: Fn(&mut Vec<(u32, u32)>) + Send + Sync + Copy,
{
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for &t in &THREADS {
        let mut data = input.to_vec();
        with_threads(t, || f(&mut data));
        match &reference {
            None => reference = Some(data),
            Some(want) => {
                assert_eq!(
                    &data, want,
                    "output differs between 1 and {t} threads [{ctx}]"
                );
            }
        }
    }
}

#[test]
fn sorters_are_thread_count_invariant_across_distributions() {
    type Sorter = (&'static str, fn(&mut Vec<(u32, u32)>));
    let sorters: [Sorter; 5] = [
        ("dtsort", |d| dtsort::sort_pairs(d)),
        ("dtsort-plain", |d| {
            dtsort::sort_pairs_with(d, &dtsort::SortConfig::plain())
        }),
        ("samplesort", |d| baselines::samplesort::sort_pairs(d)),
        ("mergesort", |d| baselines::mergesort::sort_pairs(d)),
        ("par-stdsort", |d| {
            baselines::stdsort::par_stable_by_key(d, |r| r.0)
        }),
    ];
    for (di, dist) in all_instances().iter().enumerate() {
        let input = generate_pairs_u32(dist, N, 0xABCD + di as u64);
        for (name, run) in sorters {
            let ctx = format!("sorter={name} dist={}", dist.label());
            assert_thread_count_invariant(&input, &ctx, run);
        }
    }
}

#[test]
fn semisort_is_thread_count_invariant() {
    // Both the grouped array AND the group list must be identical: group
    // order is allowed to be arbitrary, but it must be *deterministically*
    // arbitrary.
    type SemisortOutput = (Vec<(u32, u32)>, Vec<semisort::Group<u32>>);
    for (di, dist) in all_instances().iter().enumerate() {
        let input = generate_pairs_u32(dist, N, 0xBEEF + di as u64);
        let ctx = format!("dist={}", dist.label());
        let mut want: Option<SemisortOutput> = None;
        for &t in &THREADS {
            let mut data = input.clone();
            let groups = with_threads(t, || semisort::semisort_pairs(&mut data));
            match &want {
                None => want = Some((data, groups)),
                Some((wd, wg)) => {
                    assert_eq!(&data, wd, "semisorted array differs at {t} threads [{ctx}]");
                    assert_eq!(&groups, wg, "group list differs at {t} threads [{ctx}]");
                }
            }
        }
    }
}

#[test]
fn stream_sorter_is_thread_count_invariant() {
    use stream::StreamSorter;
    let picks = [
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Zipfian { s: 1.2 },
        Distribution::Exponential { lambda: 7.0 },
    ];
    for (di, dist) in picks.iter().enumerate() {
        let input = generate_pairs_u32(dist, N, 0xCAFE + di as u64);
        let ctx = format!("dist={}", dist.label());
        // Exercise both finish paths: the streaming loser-tree merge and
        // the parallel materializing merge (which also loads spilled runs
        // in parallel).
        let mut want_iter: Option<Vec<(u32, u32)>> = None;
        let mut want_vec: Option<Vec<(u32, u32)>> = None;
        for &t in &THREADS {
            let (via_iter, via_vec) = with_threads(t, || {
                let mk = || {
                    let mut s: StreamSorter<u32, u32> = StreamSorter::with_config(
                        dtsort::StreamConfig::with_memory_budget(16 << 10),
                    );
                    for chunk in input.chunks(777) {
                        s.push(chunk).unwrap();
                    }
                    assert!(s.stats().spilled_runs > 1, "expected spills [{ctx}]");
                    s
                };
                let via_iter: Vec<(u32, u32)> = mk().finish().unwrap().collect();
                let via_vec = mk().finish_vec().unwrap();
                (via_iter, via_vec)
            });
            match (&want_iter, &want_vec) {
                (None, _) => {
                    assert_eq!(via_iter, via_vec, "finish paths disagree [{ctx}]");
                    want_iter = Some(via_iter);
                    want_vec = Some(via_vec);
                }
                (Some(wi), Some(wv)) => {
                    assert_eq!(&via_iter, wi, "stream iter differs at {t} threads [{ctx}]");
                    assert_eq!(&via_vec, wv, "stream vec differs at {t} threads [{ctx}]");
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn group_by_aggregation_is_thread_count_invariant() {
    use stream::{StreamGroupBy, SumAgg};
    let input = generate_pairs_u32(&Distribution::Zipfian { s: 1.0 }, N, 0xF00D);
    let mut want: Option<Vec<(u32, u64)>> = None;
    for &t in &THREADS {
        let got = with_threads(t, || {
            let mut g: StreamGroupBy<u32, SumAgg> = StreamGroupBy::with_config(
                SumAgg,
                dtsort::StreamConfig::with_memory_budget(16 << 10),
            );
            for chunk in input.chunks(997) {
                let lifted: Vec<(u32, u64)> = chunk.iter().map(|&(k, v)| (k, v as u64)).collect();
                g.push(&lifted).unwrap();
            }
            g.finish_vec().unwrap()
        });
        match &want {
            None => want = Some(got),
            Some(w) => assert_eq!(&got, w, "group-by differs at {t} threads"),
        }
    }
}

#[test]
fn varlen_stream_sort_and_group_by_are_thread_count_invariant() {
    use stream::{FirstAgg, StreamGroupBy, StreamSorter};
    use workloads::generate_string_pairs;
    // Variable-length values route through the tag-sort + permutation and
    // tag-merge + gather paths, both of which fan out across the pool; the
    // output (keys AND payload bytes) must still be byte-identical at
    // every thread count.
    let picks = [
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
    ];
    for (di, dist) in picks.iter().enumerate() {
        let input = generate_string_pairs(dist, N, 32, 0xD00D + di as u64, 0, 96);
        let ctx = format!("dist={}", dist.label());
        let mut want_sort: Option<Vec<(u64, String)>> = None;
        let mut want_vec: Option<Vec<(u64, String)>> = None;
        let mut want_dedup: Option<Vec<(u64, String)>> = None;
        for &t in &THREADS {
            let (via_iter, via_vec, dedup) = with_threads(t, || {
                let mk = || {
                    let mut s: StreamSorter<u64, String> = StreamSorter::with_config(
                        dtsort::StreamConfig::with_memory_budget(64 << 10),
                    );
                    for chunk in input.chunks(777) {
                        s.push(chunk).unwrap();
                    }
                    assert!(s.stats().spilled_runs > 1, "expected spills [{ctx}]");
                    s
                };
                let via_iter: Vec<(u64, String)> = mk().finish().unwrap().collect();
                let via_vec = mk().finish_vec().unwrap();
                let mut g: StreamGroupBy<u64, FirstAgg<String>> = StreamGroupBy::with_config(
                    FirstAgg::new(),
                    dtsort::StreamConfig::with_memory_budget(64 << 10),
                );
                for chunk in input.chunks(777) {
                    g.push(chunk).unwrap();
                }
                (via_iter, via_vec, g.finish_vec().unwrap())
            });
            match (&want_sort, &want_vec, &want_dedup) {
                (None, _, _) => {
                    assert_eq!(via_iter, via_vec, "varlen finish paths disagree [{ctx}]");
                    want_sort = Some(via_iter);
                    want_vec = Some(via_vec);
                    want_dedup = Some(dedup);
                }
                (Some(ws), Some(wv), Some(wd)) => {
                    assert_eq!(&via_iter, ws, "varlen sort differs at {t} threads [{ctx}]");
                    assert_eq!(&via_vec, wv, "varlen vec differs at {t} threads [{ctx}]");
                    assert_eq!(&dedup, wd, "varlen dedup differs at {t} threads [{ctx}]");
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn compressed_spills_are_thread_count_invariant() {
    // The delta-compressed block format through both finish paths: block
    // encoding/decoding must be a pure function of the run contents, so
    // the bytes coming back off disk — and the merged output — cannot
    // depend on the worker count that sorted the runs.
    use stream::{SpillCompression, StreamSorter};
    use workloads::generate_string_pairs;
    let dist = Distribution::Zipfian { s: 1.2 };
    let input = generate_string_pairs(&dist, N, 32, 0xC0DE, 0, 96);
    let cfg = || dtsort::StreamConfig {
        spill_compression: SpillCompression::DeltaLz,
        ..dtsort::StreamConfig::with_memory_budget(64 << 10)
    };
    let mut want_iter: Option<Vec<(u64, String)>> = None;
    let mut want_vec: Option<Vec<(u64, String)>> = None;
    for &t in &THREADS {
        let (via_iter, via_vec) = with_threads(t, || {
            let mk = || {
                let mut s: StreamSorter<u64, String> = StreamSorter::with_config(cfg());
                for chunk in input.chunks(777) {
                    s.push(chunk).unwrap();
                }
                let stats = s.stats();
                assert!(stats.spilled_runs > 1, "expected spills");
                assert!(
                    stats.spilled_bytes < stats.spilled_raw_bytes,
                    "compression must engage"
                );
                s
            };
            let via_iter: Vec<(u64, String)> = mk().finish().unwrap().collect();
            let via_vec = mk().finish_vec().unwrap();
            (via_iter, via_vec)
        });
        match (&want_iter, &want_vec) {
            (None, _) => {
                assert_eq!(via_iter, via_vec, "compressed finish paths disagree");
                want_iter = Some(via_iter);
                want_vec = Some(via_vec);
            }
            (Some(wi), Some(wv)) => {
                assert_eq!(&via_iter, wi, "compressed iter differs at {t} threads");
                assert_eq!(&via_vec, wv, "compressed vec differs at {t} threads");
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn string_keyed_streams_are_thread_count_invariant() {
    // String keys add two schedule-sensitive-looking stages — the
    // equal-prefix tie-break re-sort and the tag-merge over full keys —
    // and both must stay pure functions of the input.  Run under both
    // spill encodings so the compressed block path is covered too.
    use stream::{CountAgg, SpillCompression, StringStreamGroupBy, StringStreamSorter};
    let raw = generate_pairs_u32(&Distribution::Zipfian { s: 1.0 }, N, 0x5EED);
    let input: Vec<(String, u32)> = raw
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| {
            (
                format!("t{:02}/shard-{:06}/item", k % 7, k % 4096),
                i as u32,
            )
        })
        .collect();
    for compression in [SpillCompression::Off, SpillCompression::DeltaLz] {
        let cfg = || dtsort::StreamConfig {
            spill_compression: compression,
            ..dtsort::StreamConfig::with_memory_budget(64 << 10)
        };
        let mut want_sort: Option<Vec<(String, u32)>> = None;
        let mut want_counts: Option<Vec<(String, u64)>> = None;
        for &t in &THREADS {
            let ctx = format!("compression={compression:?}");
            let (sorted, counts) = with_threads(t, || {
                let mut s: StringStreamSorter<String, u32> = StringStreamSorter::with_config(cfg());
                for chunk in input.chunks(777) {
                    s.push(chunk).unwrap();
                }
                assert!(s.stats().spilled_runs > 1, "expected spills [{ctx}]");
                let sorted: Vec<(String, u32)> = s.finish().unwrap().collect();
                let mut g: StringStreamGroupBy<String, CountAgg> =
                    StringStreamGroupBy::with_config(CountAgg, cfg());
                for (k, _) in &input {
                    g.push_record(k.clone(), ()).unwrap();
                }
                (sorted, g.finish_vec().unwrap())
            });
            match (&want_sort, &want_counts) {
                (None, _) => {
                    want_sort = Some(sorted);
                    want_counts = Some(counts);
                }
                (Some(ws), Some(wc)) => {
                    assert_eq!(&sorted, ws, "string sort differs at {t} threads [{ctx}]");
                    assert_eq!(&counts, wc, "string counts differ at {t} threads [{ctx}]");
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn kway_and_boundary_shapes_are_thread_count_invariant() {
    // Edge-suite shapes: many short runs, empty runs interleaved, all-equal
    // keys — merged under each thread count.
    let runs_sets: Vec<Vec<Vec<u64>>> = vec![
        (0..17).map(|i| vec![i as u64; 3]).collect(),
        vec![vec![], (0..500).collect(), vec![], (250..750).collect()],
        vec![vec![5; 100], vec![5; 57], vec![5; 1]],
        (0..8)
            .map(|r| (0..300u64).map(|i| i * 8 + r).collect())
            .collect(),
    ];
    for (si, runs) in runs_sets.iter().enumerate() {
        let slices: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut want: Option<Vec<u64>> = None;
        for &t in &THREADS {
            let got = with_threads(t, || parlay::kway::kway_merge_by(&slices, &|a, b| a < b));
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(&got, w, "kway merge differs at {t} threads [set {si}]"),
            }
        }
    }
}
