//! Chaos differential suite: the streaming engines under seeded fault
//! injection ([`stream::FaultPlan`]).
//!
//! The contract every cell asserts is **loud or lossless, never silent,
//! never hung**:
//!
//! * if the engine completes, the output must be *byte-identical* to the
//!   fault-free reference (a transparently recovered fault may not change
//!   a single record);
//! * if the engine errors, the error must be attributable — a typed
//!   [`stream::SpillError`] and/or a message naming the injected fault —
//!   and the spill directory must be empty after teardown (no leaked
//!   runs, no leaked partial files);
//! * mid-merge read faults on the streaming iterator keep the documented
//!   loud-panic contract — the panic names the injection, and teardown
//!   still empties the spill directory.
//!
//! Fault schedules are deterministic (seeded, keyed by per-operation
//! counters).  CI re-runs the suite under two seeds via
//! `PISORT_FAULT_PLAN=<seed>[:<period>]`; without the variable the
//! built-in seeds below run.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use stream::{
    FaultKind, FaultPlan, SpillCompression, SpillError, SpillIoHandle, StreamGroupBy, StreamSorter,
    SumAgg, DEFAULT_FAULT_PERIOD,
};
use workloads::dist::{generate_pairs_u32, Distribution};

const N: usize = 10_000;
const CHUNK: usize = 777;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty spill base directory unique to one chaos cell.
fn case_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pisort-chaos-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_empty_and_remove(base: &Path, ctx: &str) {
    let leftovers: Vec<_> = std::fs::read_dir(base)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "leaked spill state after injected fault [{ctx}]: {leftovers:?}"
    );
    std::fs::remove_dir_all(base).ok();
}

/// The `(seed, period)` fault schedules of this run: the
/// `PISORT_FAULT_PLAN` spec when set (the CI chaos legs), the two
/// built-in seeds otherwise.
fn fault_specs() -> Vec<(u64, u64)> {
    if let Ok(spec) = std::env::var("PISORT_FAULT_PLAN") {
        let spec = spec.trim();
        let parsed = match spec.split_once(':') {
            Some((s, p)) => s.trim().parse().ok().zip(p.trim().parse().ok()),
            None => spec.parse().ok().map(|s| (s, DEFAULT_FAULT_PERIOD)),
        };
        if let Some(sp) = parsed {
            return vec![sp];
        }
    }
    vec![(0xC4A0_5001, 23), (0xC4A0_5002, 23)]
}

/// The backend × (codec, spill-mode) matrix each chaos scenario sweeps.
fn cells() -> Vec<(&'static str, SpillCompression, bool)> {
    use SpillCompression::{DeltaLz, Off};
    let mut m = Vec::new();
    for backend in ["blocking", "batched"] {
        for (c, s) in [(Off, true), (Off, false), (DeltaLz, true), (DeltaLz, false)] {
            m.push((backend, c, s));
        }
    }
    m
}

fn make_io(backend: &str) -> SpillIoHandle {
    match backend {
        "blocking" => SpillIoHandle::blocking(),
        _ => SpillIoHandle::batched(2, 8),
    }
}

fn cfg(base: &Path, compression: SpillCompression, synchronous: bool) -> dtsort::StreamConfig {
    dtsort::StreamConfig {
        spill_dir: Some(base.to_path_buf()),
        spill_compression: compression,
        synchronous_spill: synchronous,
        ..dtsort::StreamConfig::with_memory_budget(16 << 10)
    }
}

/// An error escaping a chaos run must be attributable: typed, or naming
/// the injection, or the loud writer/worker-panic conversion.
fn assert_attributable(e: &io::Error, ctx: &str) {
    let msg = e.to_string();
    assert!(
        SpillError::from_io(e).is_some() || msg.contains("injected") || msg.contains("panicked"),
        "untyped, unattributable chaos error [{ctx}]: kind={:?} msg={msg}",
        e.kind()
    );
}

/// The main sweep: the distribution matrix under a blanket fault mix
/// (every error-returning site), on every backend × format × spill-mode
/// cell.  `finish_vec` is used so merge-time read faults surface as
/// `Err`, keeping the whole cell in the loud-or-lossless contract.
#[test]
fn faulted_sorts_are_byte_identical_or_loudly_typed() {
    let dists = [
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
    ];
    let mut injected_total = 0u64;
    let mut recovered = 0usize;
    let mut errored = 0usize;
    for (seed, period) in fault_specs() {
        for (di, dist) in dists.iter().enumerate() {
            let input = generate_pairs_u32(dist, N, 0xC4A0_0000 + di as u64);
            let mut want = input.clone();
            want.sort_by_key(|r| r.0);
            for (backend, compression, synchronous) in cells() {
                let ctx = format!(
                    "sorter seed={seed} period={period} dist={} backend={backend} \
                     compression={compression:?} sync={synchronous}",
                    dist.label()
                );
                let base = case_dir("sort");
                let plan = FaultPlan::seeded(seed ^ (di as u64) << 32, period);
                let io = make_io(backend).with_faults(plan.clone());
                let mut sorter: StreamSorter<u32, u32> =
                    StreamSorter::with_config_and_io(cfg(&base, compression, synchronous), io);
                let mut push_err = None;
                for chunk in input.chunks(CHUNK) {
                    if let Err(e) = sorter.push(chunk) {
                        push_err = Some(e);
                        break;
                    }
                }
                let result = match push_err {
                    Some(e) => {
                        drop(sorter);
                        Err(e)
                    }
                    None => sorter.finish_vec(),
                };
                match result {
                    Ok(got) => {
                        assert_eq!(got, want, "recovered run must be byte-identical [{ctx}]");
                        recovered += 1;
                    }
                    Err(e) => {
                        assert_attributable(&e, &ctx);
                        errored += 1;
                    }
                }
                assert_empty_and_remove(&base, &ctx);
                injected_total += plan.injected();
            }
        }
    }
    assert!(
        injected_total > 0,
        "the chaos sweep must actually inject faults \
         (recovered={recovered} errored={errored})"
    );
}

/// The group-by engine under the same blanket mix, minus the read-side
/// kinds: its merge streams partials through the loser tree, where a
/// mid-stream read fault panics by contract (covered separately below),
/// so this sweep pins the write/open/fsync paths to Ok-or-typed.
#[test]
fn faulted_group_bys_aggregate_exactly_or_loudly_typed() {
    const WRITE_SIDE: &[FaultKind] = &[
        FaultKind::CreateTransient,
        FaultKind::OpenTransient,
        FaultKind::WriteEnospc,
        FaultKind::WriteTransient,
        FaultKind::TornWrite,
        FaultKind::FsyncTransient,
    ];
    let input: Vec<(u32, u64)> =
        generate_pairs_u32(&Distribution::Zipfian { s: 1.2 }, 4 * N, 0xC4A0_6000)
            .into_iter()
            .map(|(k, _)| (k, 1u64))
            .collect();
    let mut want = std::collections::BTreeMap::new();
    for &(k, v) in &input {
        *want.entry(k).or_insert(0u64) += v;
    }
    let want: Vec<(u32, u64)> = want.into_iter().collect();
    let mut injected_total = 0u64;
    for (seed, period) in fault_specs() {
        for (backend, compression, synchronous) in cells() {
            let ctx = format!(
                "group-by seed={seed} period={period} backend={backend} \
                 compression={compression:?} sync={synchronous}"
            );
            let base = case_dir("group");
            let plan = FaultPlan::seeded_kinds(seed, period, WRITE_SIDE);
            let io = make_io(backend).with_faults(plan.clone());
            let mut gb: StreamGroupBy<u32, SumAgg> =
                StreamGroupBy::with_config_and_io(SumAgg, cfg(&base, compression, synchronous), io);
            let mut push_err = None;
            for chunk in input.chunks(CHUNK) {
                if let Err(e) = gb.push(chunk) {
                    push_err = Some(e);
                    break;
                }
            }
            let result = match push_err {
                Some(e) => {
                    drop(gb);
                    Err(e)
                }
                None => gb.finish_vec(),
            };
            match result {
                Ok(got) => assert_eq!(got, want, "recovered group-by must agree [{ctx}]"),
                Err(e) => assert_attributable(&e, &ctx),
            }
            assert_empty_and_remove(&base, &ctx);
            injected_total += plan.injected();
        }
    }
    assert!(injected_total > 0, "the group-by sweep must inject faults");
}

/// Single targeted transient faults must be *fully absorbed*: the retry
/// layer re-runs the failed operation, the output is byte-identical, and
/// the write-side retries are visible in [`stream::StreamStats`].
#[test]
fn single_transient_faults_are_recovered_exactly_with_visible_retries() {
    let input = generate_pairs_u32(&Distribution::Zipfian { s: 1.2 }, N, 0xC4A0_7000);
    let mut want = input.clone();
    want.sort_by_key(|r| r.0);
    let targets = [
        ("create", FaultKind::CreateTransient, 1),
        ("write", FaultKind::WriteTransient, 5),
        ("fsync", FaultKind::FsyncTransient, 2),
        ("read", FaultKind::ReadTransient, 3),
    ];
    for (backend, compression, synchronous) in cells() {
        for (name, kind, n) in targets {
            let ctx = format!(
                "targeted {name} backend={backend} compression={compression:?} sync={synchronous}"
            );
            let base = case_dir("nth");
            let plan = FaultPlan::nth(kind, n);
            let io = make_io(backend).with_faults(plan.clone());
            let mut sorter: StreamSorter<u32, u32> =
                StreamSorter::with_config_and_io(cfg(&base, compression, synchronous), io);
            for chunk in input.chunks(CHUNK) {
                sorter.push(chunk).unwrap_or_else(|e| {
                    panic!("single transient fault must be absorbed [{ctx}]: {e}")
                });
            }
            sorter
                .flush_spills()
                .unwrap_or_else(|e| panic!("flush must absorb the fault [{ctx}]: {e}"));
            let write_side = !matches!(kind, FaultKind::ReadTransient);
            if write_side {
                assert!(
                    plan.injected() == 1,
                    "the targeted fault must have fired by flush time [{ctx}]"
                );
                assert!(
                    sorter.stats().spill_retries >= 1,
                    "write-side recovery must be visible in stats [{ctx}]"
                );
            }
            let got = sorter
                .finish_vec()
                .unwrap_or_else(|e| panic!("recovery must complete the sort [{ctx}]: {e}"));
            assert_eq!(got, want, "recovered output must be byte-identical [{ctx}]");
            assert_eq!(
                plan.injected(),
                1,
                "exactly the targeted fault fires [{ctx}]"
            );
            assert_empty_and_remove(&base, &ctx);
        }
    }
}

/// A torn write on the pipelined path surfaces exactly one loud, typed
/// error, engages degradation probation (visible in the stats), rewrites
/// the reclaimed run synchronously — and loses not a single record.
#[test]
fn torn_write_degrades_recovers_and_reports_probation() {
    let input = generate_pairs_u32(
        &Distribution::Uniform { distinct: 1 << 20 },
        2 * N,
        0xC4A0_8000,
    );
    let mut want = input.clone();
    want.sort_by_key(|r| r.0);
    for backend in ["blocking", "batched"] {
        let ctx = format!("torn-write backend={backend}");
        let base = case_dir("torn");
        let plan = FaultPlan::nth(FaultKind::TornWrite, 4);
        let io = make_io(backend).with_faults(plan.clone());
        let mut sorter: StreamSorter<u32, u32> =
            StreamSorter::with_config_and_io(cfg(&base, SpillCompression::Off, false), io);
        // The broken pipeline reports its error on exactly one push (or
        // the flush); afterwards the engine carries on synchronously.
        let mut errors = 0usize;
        for chunk in input.chunks(CHUNK) {
            if let Err(e) = sorter.push(chunk) {
                assert_attributable(&e, &ctx);
                errors += 1;
            }
        }
        if let Err(e) = sorter.flush_spills() {
            assert_attributable(&e, &ctx);
            errors += 1;
        }
        assert_eq!(plan.injected(), 1, "the torn write must have fired [{ctx}]");
        assert_eq!(errors, 1, "exactly one loud error [{ctx}]");
        assert!(
            sorter.stats().degraded_syncs >= 1,
            "probation must be visible in stats [{ctx}]: {:?}",
            sorter.stats()
        );
        let got = sorter.finish_vec().unwrap();
        assert_eq!(got, want, "no record may be lost to the torn write [{ctx}]");
        assert_empty_and_remove(&base, &ctx);
    }
}

/// Mid-merge read faults on the *streaming* iterator keep the documented
/// contract: loud (an error from `finish`, or a panic naming the
/// injection mid-drain) — never silent truncation — and the spill
/// directory is empty after unwinding.
#[test]
fn mid_merge_read_faults_are_loud_and_clean_up() {
    let input = generate_pairs_u32(&Distribution::Zipfian { s: 1.2 }, N, 0xC4A0_9000);
    let mut want = input.clone();
    want.sort_by_key(|r| r.0);
    for backend in ["blocking", "batched"] {
        for n in [0u64, 7, 31, 200] {
            let ctx = format!("mid-merge-read backend={backend} nth={n}");
            let base = case_dir("midread");
            let plan = FaultPlan::nth(FaultKind::ReadTransient, n);
            let io = make_io(backend).with_faults(plan.clone());
            let mut sorter: StreamSorter<u32, u32> =
                StreamSorter::with_config_and_io(cfg(&base, SpillCompression::DeltaLz, true), io);
            for chunk in input.chunks(CHUNK) {
                sorter.push(chunk).unwrap();
            }
            let outcome = catch_unwind(AssertUnwindSafe(move || -> io::Result<Vec<(u32, u32)>> {
                Ok(sorter.finish()?.collect())
            }));
            match outcome {
                // The fault landed on a retried path (cursor open) or
                // never fired: the drain must then be exact.
                Ok(Ok(got)) => assert_eq!(got, want, "absorbed read fault changed bytes [{ctx}]"),
                Ok(Err(e)) => assert_attributable(&e, &ctx),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_default();
                    assert!(
                        msg.contains("injected") || msg.contains("I/O error reading spilled run"),
                        "unattributable mid-merge panic [{ctx}]: {msg}"
                    );
                }
            }
            assert_empty_and_remove(&base, &ctx);
        }
    }
}
