//! Property tests of the streaming out-of-core sorter: across batch sizes,
//! memory budgets (forcing spills) and key distributions, the output must
//! be a *stable sorted permutation* of the pushed input, exactly matching
//! the standard library's stable sort.

use pisort::dtsort::{SortConfig, StreamConfig};
use pisort::workloads::dist::Distribution;
use pisort::StreamSorter;
use proptest::collection::vec;
use proptest::prelude::*;

/// A small-budget config whose inner sort also exercises the radix path.
fn small_cfg(budget: usize) -> StreamConfig {
    StreamConfig {
        memory_budget_bytes: budget,
        sort: SortConfig {
            base_case_threshold: 64,
            ..SortConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn reference(input: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut want = input.to_vec();
    want.sort_by_key(|r| r.0);
    want
}

/// Pushes `input` in `batch`-sized chunks under `budget` bytes and returns
/// the iterator-merged output plus the number of spilled runs.
fn stream_sorted(input: &[(u32, u32)], budget: usize, batch: usize) -> (Vec<(u32, u32)>, usize) {
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(small_cfg(budget));
    for chunk in input.chunks(batch.max(1)) {
        sorter.push(chunk).expect("push");
    }
    let spilled = sorter.stats().spilled_runs;
    (sorter.finish().expect("finish").collect(), spilled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stable_sorted_permutation_across_budgets_and_batches(
        keys in vec(any::<u32>(), 0..4000),
        small_keys in vec(0u32..8, 0..4000),
        budget_kib in 1usize..32,
        batch in 1usize..1500,
    ) {
        // Wide keys (few duplicates) and narrow keys (heavy duplicates).
        for keyset in [keys, small_keys] {
            let input: Vec<(u32, u32)> = keyset.iter().enumerate()
                .map(|(i, &k)| (k, i as u32)).collect();
            let (got, _) = stream_sorted(&input, budget_kib << 10, batch);
            prop_assert_eq!(got, reference(&input));
        }
    }

    #[test]
    fn finish_into_matches_iterator(
        keys in vec(any::<u32>(), 0..3000),
        batch in 1usize..700,
    ) {
        let input: Vec<(u32, u32)> = keys.iter().enumerate()
            .map(|(i, &k)| (k, i as u32)).collect();
        let budget = 4 << 10;
        let (via_iter, _) = stream_sorted(&input, budget, batch);

        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(small_cfg(budget));
        for chunk in input.chunks(batch) {
            sorter.push(chunk).expect("push");
        }
        let mut via_slice = vec![(0u32, 0u32); input.len()];
        sorter.finish_into(&mut via_slice).expect("finish_into");
        prop_assert_eq!(via_iter, via_slice);
    }
}

/// Deterministic large-scale checks per distribution: the dataset is ~16×
/// the memory budget, so the sorter must spill many runs and merge them
/// from disk.
#[test]
fn larger_than_memory_across_distributions() {
    let n = 60_000usize;
    let record = std::mem::size_of::<(u32, u32)>();
    let budget = n * record / 16;
    for dist in [
        Distribution::Uniform { distinct: 1 << 30 }, // nearly all distinct
        Distribution::Uniform { distinct: 7 },       // heavy duplicates
        Distribution::Zipfian { s: 1.2 },            // skewed duplicates
    ] {
        let input = pisort::workloads::dist::generate_pairs_u32(&dist, n, 99);
        let (got, spilled) = stream_sorted(&input, budget, 4096);
        assert!(
            spilled >= 8,
            "{}: expected many spills, got {spilled}",
            dist.label()
        );
        assert_eq!(got, reference(&input), "{} must sort stably", dist.label());
    }
}

#[test]
fn streamed_batches_match_one_shot_generator_contract() {
    // The batch generator promises global record indices; a stable sort of
    // the concatenation must therefore keep per-key index order.
    let dist = Distribution::Zipfian { s: 1.5 };
    let n = 40_000usize;
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(small_cfg(8 << 10));
    let mut input = Vec::with_capacity(n);
    for batch in pisort::workloads::batches_u32(&dist, n, 1777, 5) {
        input.extend_from_slice(&batch);
        sorter.push(&batch).expect("push");
    }
    assert!(sorter.stats().spilled_runs > 4);
    let got: Vec<(u32, u32)> = sorter.finish().expect("finish").collect();
    assert_eq!(got, reference(&input));
}

#[test]
fn heavy_duplicate_stream_carries_keys_and_stays_stable() {
    // 60% of the stream is one key; the carry must pick it up after the
    // first run and the output must still be exactly std's stable sort.
    let n = 50_000usize;
    let input: Vec<(u32, u32)> = (0..n)
        .map(|i| {
            let k = if i % 5 < 3 {
                123_456
            } else {
                (i as u32).wrapping_mul(2_654_435_761)
            };
            (k, i as u32)
        })
        .collect();
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(small_cfg(16 << 10));
    sorter.push(&input).expect("push");
    assert!(sorter.stats().spilled_runs > 2);
    assert!(
        sorter.carried_heavy_keys().contains(&123_456),
        "carry: {:?}",
        sorter.carried_heavy_keys()
    );
    let got: Vec<(u32, u32)> = sorter.finish().expect("finish").collect();
    assert_eq!(got, reference(&input));
}

#[test]
fn string_payload_stream_matches_std_stable_sort() {
    // Public-API end-to-end check of the variable-length path: a
    // larger-than-budget stream of (key, String) records must come back as
    // exactly std's stable sort of the concatenated batches, through both
    // finish paths.
    let dist = Distribution::Zipfian { s: 1.2 };
    let n = 25_000usize;
    let mut input: Vec<(u64, String)> = Vec::with_capacity(n);
    let mk = || StreamSorter::<u64, String>::with_config(small_cfg(32 << 10));
    let mut sorter = mk();
    let mut sorter2 = mk();
    for batch in pisort::workloads::StringBatchStream::new(&dist, n, 32, 1333, 7, 0, 120) {
        sorter.push(&batch).expect("push");
        sorter2.push(&batch).expect("push");
        input.extend(batch);
    }
    assert!(
        sorter.stats().spilled_runs > 2,
        "stats: {:?}",
        sorter.stats()
    );
    let got: Vec<(u64, String)> = sorter.finish().expect("finish").collect();
    let via_vec = sorter2.finish_vec().expect("finish_vec");
    let mut want = input;
    want.sort_by_key(|r| r.0);
    assert_eq!(got, want, "streamed string sort must be std's stable sort");
    assert_eq!(via_vec, want, "parallel merge path must agree");
}

#[test]
fn streaming_string_dedup_keeps_first_payload() {
    use pisort::stream::{FirstAgg, StreamGroupBy};
    let dist = Distribution::Uniform { distinct: 300 };
    let n = 20_000usize;
    let mut gb: StreamGroupBy<u64, FirstAgg<String>> =
        StreamGroupBy::with_config(FirstAgg::new(), small_cfg(16 << 10));
    let mut first = std::collections::HashMap::new();
    for batch in pisort::workloads::StringBatchStream::new(&dist, n, 32, 997, 8, 4, 64) {
        for (k, v) in &batch {
            first.entry(*k).or_insert_with(|| v.clone());
        }
        gb.push(&batch).expect("push");
    }
    assert!(gb.stats().spilled_runs > 1, "stats: {:?}", gb.stats());
    let got = gb.finish_vec().expect("finish");
    assert_eq!(got.len(), first.len());
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
    for (k, v) in &got {
        assert_eq!(v, &first[k], "key {k}: first payload in stream order");
    }
}
