//! Cross-crate integration tests: every sorting algorithm in the workspace,
//! on every workload-generator distribution, for 32-bit and 64-bit keys,
//! cross-checked against the standard library sort.

use workloads::dist::{bexp_instances, paper_instances, Distribution};

const N: usize = 40_000;

type Sorter32 = (&'static str, fn(&mut [(u32, u32)]));
type Sorter64 = (&'static str, fn(&mut [(u64, u64)]));

fn sorters_32() -> Vec<Sorter32> {
    vec![
        ("dtsort", |d| dtsort::sort_pairs(d)),
        ("dtsort-plain", |d| {
            dtsort::sort_pairs_with(d, &dtsort::SortConfig::plain())
        }),
        ("plis", |d| baselines::plis::sort_pairs(d)),
        ("lsd", |d| baselines::lsd::sort_pairs(d)),
        ("samplesort", |d| baselines::samplesort::sort_pairs(d)),
        ("inplace-radix", |d| baselines::inplace_radix::sort_pairs(d)),
    ]
}

fn sorters_64() -> Vec<Sorter64> {
    vec![
        ("dtsort", |d| dtsort::sort_pairs(d)),
        ("dtsort-plain", |d| {
            dtsort::sort_pairs_with(d, &dtsort::SortConfig::plain())
        }),
        ("plis", |d| baselines::plis::sort_pairs(d)),
        ("lsd", |d| baselines::lsd::sort_pairs(d)),
        ("samplesort", |d| baselines::samplesort::sort_pairs(d)),
        ("inplace-radix", |d| baselines::inplace_radix::sort_pairs(d)),
    ]
}

fn all_distributions() -> Vec<Distribution> {
    let mut v = paper_instances();
    v.extend(bexp_instances());
    v
}

#[test]
fn every_sorter_sorts_every_distribution_32bit() {
    for dist in all_distributions() {
        let input = workloads::dist::generate_pairs_u32(&dist, N, 7);
        let mut want_keys: Vec<u32> = input.iter().map(|r| r.0).collect();
        want_keys.sort_unstable();
        for (name, sorter) in sorters_32() {
            let mut data = input.clone();
            sorter(&mut data);
            let got_keys: Vec<u32> = data.iter().map(|r| r.0).collect();
            assert_eq!(got_keys, want_keys, "{name} failed on {}", dist.label());
            // Output must be a permutation of the input.
            let mut a = data;
            let mut b = input.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{name} lost records on {}", dist.label());
        }
    }
}

#[test]
fn every_sorter_sorts_every_distribution_64bit() {
    for dist in all_distributions() {
        let input = workloads::dist::generate_pairs_u64(&dist, N, 11);
        let mut want_keys: Vec<u64> = input.iter().map(|r| r.0).collect();
        want_keys.sort_unstable();
        for (name, sorter) in sorters_64() {
            let mut data = input.clone();
            sorter(&mut data);
            let got_keys: Vec<u64> = data.iter().map(|r| r.0).collect();
            assert_eq!(got_keys, want_keys, "{name} failed on {}", dist.label());
        }
    }
}

#[test]
fn stable_sorters_agree_exactly_on_duplicate_heavy_input() {
    // On a duplicate-heavy input, all *stable* sorters must produce exactly
    // the same record sequence (the stable order is unique).
    let dist = Distribution::Zipfian { s: 1.5 };
    let input = workloads::dist::generate_pairs_u32(&dist, N, 13);
    let mut reference = input.clone();
    reference.sort_by_key(|r| r.0);
    for (name, sorter) in sorters_32() {
        if name == "inplace-radix" {
            continue; // unstable by design
        }
        let mut data = input.clone();
        sorter(&mut data);
        assert_eq!(data, reference, "{name} is not stable");
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    let mut v = vec![5u64, 3, 9, 3, 1];
    pisort::sort(&mut v);
    assert_eq!(v, vec![1, 3, 3, 5, 9]);
    let mut pairs = vec![(2u32, 0u8), (1, 1), (2, 2)];
    pisort::sort_pairs(&mut pairs);
    assert_eq!(pairs, vec![(1, 1), (2, 0), (2, 2)]);
    let stats = pisort::sort_with_stats(&mut [3u32, 1, 2][..], &pisort::SortConfig::default());
    assert_eq!(stats.heavy_keys, 0);
}

#[test]
fn large_single_instance_end_to_end() {
    // One bigger run (beyond the base-case threshold at every level) to
    // exercise deep recursion on 64-bit keys.
    let dist = Distribution::Uniform { distinct: 1 << 62 };
    let n = 300_000;
    let mut data = workloads::dist::generate_pairs_u64(&dist, n, 5);
    let mut want = data.clone();
    want.sort_by_key(|r| r.0);
    dtsort::sort_pairs(&mut data);
    assert_eq!(data, want);
}
