//! Differential tests of the pipelined spill subsystem: with
//! `StreamConfig::synchronous_spill` as the reference, the pipelined
//! engines (background spill writer + merge read-ahead) must produce
//! **byte-identical** output for pod and variable-length sorts and
//! group-bys, at every thread count of the determinism matrix — and a
//! spill directory that fails under the writer thread must surface the
//! error on `push` or `finish`, never hang or drop records.

use parlay::par::with_threads;
use pisort::dtsort::{SortConfig, StreamConfig};
use pisort::stream::{ConcatAgg, FirstAgg, StreamGroupBy, SumAgg};
use pisort::workloads::dist::Distribution;
use pisort::workloads::{dist::generate_pairs_u32, generate_string_pairs};
use pisort::StreamSorter;

const THREADS: [usize; 2] = [1, 4];
const N: usize = 30_000;

/// A small-budget config; `sync` toggles the pre-pipelining behavior.
fn cfg(budget: usize, sync: bool) -> StreamConfig {
    StreamConfig {
        memory_budget_bytes: budget,
        synchronous_spill: sync,
        // Force the read-ahead merge path (auto mode would disable it on
        // single-CPU hosts), so the differential covers it everywhere.
        merge_read_ahead: Some(true),
        sort: SortConfig {
            base_case_threshold: 64,
            ..SortConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn dists() -> Vec<Distribution> {
    vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Uniform { distinct: 10 },
        Distribution::Zipfian { s: 1.2 },
    ]
}

#[test]
fn pod_sort_pipelined_matches_synchronous_across_threads() {
    for (di, dist) in dists().iter().enumerate() {
        let input = generate_pairs_u32(dist, N, 0x51DE + di as u64);
        let ctx = dist.label();
        for &t in &THREADS {
            let run = |sync: bool| {
                with_threads(t, || {
                    let mut s: StreamSorter<u32, u32> =
                        StreamSorter::with_config(cfg(16 << 10, sync));
                    for chunk in input.chunks(997) {
                        s.push(chunk).unwrap();
                    }
                    assert!(s.run_count() > 2, "expected spills [{ctx}]");
                    let via_iter: Vec<(u32, u32)> = s.finish().unwrap().collect();
                    via_iter
                })
            };
            let pipelined = run(false);
            let synchronous = run(true);
            assert_eq!(
                pipelined, synchronous,
                "pipelined vs synchronous pod sort diverged [{ctx}, {t} threads]"
            );
        }
    }
}

#[test]
fn pod_finish_into_pipelined_matches_synchronous() {
    let input = generate_pairs_u32(&Distribution::Zipfian { s: 1.0 }, N, 0xABCD);
    let run = |sync: bool| {
        let mut s: StreamSorter<u32, u32> = StreamSorter::with_config(cfg(16 << 10, sync));
        s.push(&input).unwrap();
        s.finish_vec().unwrap()
    };
    assert_eq!(run(false), run(true), "materializing merge path diverged");
}

#[test]
fn varlen_sort_pipelined_matches_synchronous_across_threads() {
    let input = generate_string_pairs(&Distribution::Zipfian { s: 1.2 }, 12_000, 32, 7, 0, 96);
    for &t in &THREADS {
        let run = |sync: bool| {
            with_threads(t, || {
                let mut s: StreamSorter<u64, String> =
                    StreamSorter::with_config(cfg(48 << 10, sync));
                for chunk in input.chunks(613) {
                    s.push(chunk).unwrap();
                }
                assert!(s.run_count() > 2, "expected spills");
                let out: Vec<(u64, String)> = s.finish().unwrap().collect();
                out
            })
        };
        assert_eq!(
            run(false),
            run(true),
            "pipelined vs synchronous varlen sort diverged at {t} threads"
        );
    }
}

#[test]
fn group_bys_pipelined_match_synchronous_across_threads() {
    // SumAgg: associative-commutative pod accumulators.  ConcatAgg:
    // push-order-sensitive variable-length accumulators — the sharpest
    // detector of any run-boundary or merge-order drift between the modes.
    let input = generate_pairs_u32(&Distribution::Zipfian { s: 1.0 }, N, 0xF00D);
    for &t in &THREADS {
        let sums = |sync: bool| {
            with_threads(t, || {
                let mut g: StreamGroupBy<u32, SumAgg> =
                    StreamGroupBy::with_config(SumAgg, cfg(16 << 10, sync));
                for chunk in input.chunks(997) {
                    let lifted: Vec<(u32, u64)> =
                        chunk.iter().map(|&(k, v)| (k, v as u64)).collect();
                    g.push(&lifted).unwrap();
                }
                g.finish_vec().unwrap()
            })
        };
        assert_eq!(sums(false), sums(true), "SumAgg diverged at {t} threads");

        let concats = |sync: bool| {
            with_threads(t, || {
                let mut g: StreamGroupBy<u32, ConcatAgg> =
                    StreamGroupBy::with_config(ConcatAgg, cfg(16 << 10, sync));
                for (i, &(k, _)) in input.iter().enumerate() {
                    g.push_record(k % 64, format!("[{i}]").into_bytes())
                        .unwrap();
                }
                g.finish_vec().unwrap()
            })
        };
        assert_eq!(
            concats(false),
            concats(true),
            "ConcatAgg diverged at {t} threads"
        );
    }
}

#[test]
fn varlen_dedup_pipelined_matches_synchronous() {
    let input = generate_string_pairs(
        &Distribution::Uniform { distinct: 400 },
        15_000,
        32,
        9,
        4,
        64,
    );
    let run = |sync: bool| {
        let mut g: StreamGroupBy<u64, FirstAgg<String>> =
            StreamGroupBy::with_config(FirstAgg::new(), cfg(16 << 10, sync));
        for chunk in input.chunks(777) {
            g.push(chunk).unwrap();
        }
        g.finish_vec().unwrap()
    };
    assert_eq!(run(false), run(true), "FirstAgg dedup diverged");
}

/// Pushes batches until either an error surfaces or the stream completes;
/// the spill directory is destroyed under the engine after the first
/// spill, so the writer thread starts failing mid-stream.
#[test]
fn failing_spill_dir_surfaces_writer_error_on_push_or_finish() {
    let base = std::env::temp_dir().join(format!("pisort-pipefail-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let config = StreamConfig {
        spill_dir: Some(base.clone()),
        ..cfg(16 << 10, false)
    };
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(config);
    let batch: Vec<(u32, u32)> = (0..4096u32).map(|i| (i.rotate_left(13), i)).collect();
    // First spills go through and create the unique spill subdirectory.
    sorter.push(&batch).unwrap();
    sorter.flush_spills().unwrap();
    assert!(sorter.stats().spilled_runs > 0, "premise: spills happened");
    // Destroy the directory tree and block its path with a regular file:
    // every write the background thread attempts from here on fails.
    std::fs::remove_dir_all(&base).unwrap();
    std::fs::write(&base, b"blocked").unwrap();
    let result: std::io::Result<usize> = (|| {
        for _ in 0..64 {
            sorter.push(&batch)?;
        }
        // If no push surfaced it, finish must (it drains the writer).
        Ok(sorter.finish()?.count())
    })();
    let err = result.expect_err("a destroyed spill dir must surface as an io::Error");
    assert_ne!(err.to_string(), "", "error must be descriptive");
    std::fs::remove_file(&base).ok();
}

/// Same failure shape through the group-by, surfacing on `finish`: the
/// error arrives between the last push and the merge.
#[test]
fn failing_spill_dir_surfaces_group_by_error_no_hang() {
    let base = std::env::temp_dir().join(format!("pisort-gbpipefail-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let config = StreamConfig {
        spill_dir: Some(base.clone()),
        ..cfg(16 << 10, false)
    };
    let mut gb: StreamGroupBy<u64, SumAgg> = StreamGroupBy::with_config(SumAgg, config);
    for i in 0..20_000u64 {
        gb.push_record(i % 5000, 1).unwrap();
    }
    gb.flush_spills().unwrap();
    assert!(gb.stats().spilled_runs > 0, "premise: spills happened");
    std::fs::remove_dir_all(&base).unwrap();
    std::fs::write(&base, b"blocked").unwrap();
    let result: std::io::Result<usize> = (|| {
        for i in 0..200_000u64 {
            gb.push_record(i % 5000, 1)?;
        }
        Ok(gb.finish()?.count())
    })();
    assert!(
        result.is_err(),
        "a destroyed spill dir must surface from push or finish"
    );
    std::fs::remove_file(&base).ok();
}
