//! Edge-case coverage for the k-way merge (`parlay::kway`) and the
//! streaming crate: empty runs, single runs, all-equal keys, batch size 1,
//! degenerate memory budgets, and corrupted spill files.  The module tests
//! of those crates cover the well-formed multi-run cases; everything here
//! is a boundary the merge or the spill machinery could plausibly get
//! wrong.

use parlay::kway::{kway_merge_by, kway_merge_into, LoserTree, SliceSource};
use stream::{CountAgg, StreamGroupBy, StreamSorter};

fn lt_u64(a: &u64, b: &u64) -> bool {
    a < b
}

// ---------------------------------------------------------------------------
// parlay::kway
// ---------------------------------------------------------------------------

#[test]
fn kway_all_runs_empty() {
    let empty: &[u64] = &[];
    let runs: Vec<&[u64]> = vec![empty; 7];
    assert!(kway_merge_by(&runs, &lt_u64).is_empty());
    let mut out: Vec<u64> = vec![];
    kway_merge_into(&runs, &mut out, &lt_u64);
    assert!(out.is_empty());
}

#[test]
fn kway_single_run_is_identity() {
    let run: Vec<u64> = (0..5000).map(|i| i * 3).collect();
    let got = kway_merge_by(&[run.as_slice()], &lt_u64);
    assert_eq!(got, run);
}

#[test]
fn kway_empty_runs_interleaved_with_data() {
    let empty: &[u64] = &[];
    let a = [1u64, 4, 9];
    let b = [2u64, 3];
    let runs: Vec<&[u64]> = vec![empty, &a, empty, empty, &b, empty];
    assert_eq!(kway_merge_by(&runs, &lt_u64), vec![1, 2, 3, 4, 9]);
}

#[test]
fn kway_all_equal_keys_is_stable_across_runs() {
    // Every record has the same key; the merge must emit run 0's records
    // first, then run 1's, ... — each in input order.
    let k = 6;
    let per = 3000usize;
    let runs: Vec<Vec<(u32, u32)>> = (0..k)
        .map(|r| (0..per).map(|i| (7u32, (r * per + i) as u32)).collect())
        .collect();
    let slices: Vec<&[(u32, u32)]> = runs.iter().map(|v| v.as_slice()).collect();
    let got = kway_merge_by(&slices, &|a: &(u32, u32), b: &(u32, u32)| a.0 < b.0);
    let want: Vec<(u32, u32)> = (0..k * per).map(|i| (7u32, i as u32)).collect();
    assert_eq!(got, want);
}

#[test]
fn kway_runs_of_length_one() {
    let singles: Vec<Vec<u64>> = vec![vec![5], vec![1], vec![9], vec![1], vec![0]];
    let slices: Vec<&[u64]> = singles.iter().map(|v| v.as_slice()).collect();
    assert_eq!(kway_merge_by(&slices, &lt_u64), vec![0, 1, 1, 5, 9]);
}

#[test]
fn loser_tree_all_sources_empty() {
    let empty: [u64; 0] = [];
    let sources: Vec<SliceSource<'_, u64>> = (0..5).map(|_| SliceSource::new(&empty[..])).collect();
    let mut tree = LoserTree::new(sources, |x: &u64, y: &u64| x < y);
    assert_eq!(tree.pop(), None);
    assert_eq!(tree.pop(), None, "pop after exhaustion must stay None");
}

#[test]
fn loser_tree_non_power_of_two_source_count() {
    // 5 sources exercises the phantom-leaf padding to 8.
    let runs: Vec<Vec<u64>> = (0..5u64)
        .map(|r| (0..100).map(|i| i * 5 + r).collect())
        .collect();
    let sources: Vec<SliceSource<'_, u64>> = runs
        .iter()
        .map(|v| SliceSource::new(v.as_slice()))
        .collect();
    let tree = LoserTree::new(sources, |x: &u64, y: &u64| x < y);
    let got: Vec<u64> = tree.collect();
    assert_eq!(got, (0..500).collect::<Vec<u64>>());
}

// ---------------------------------------------------------------------------
// stream::StreamSorter
// ---------------------------------------------------------------------------

fn tiny_budget_cfg(budget: usize) -> dtsort::StreamConfig {
    dtsort::StreamConfig::with_memory_budget(budget)
}

#[test]
fn stream_batch_size_one_everywhere() {
    // Push a record at a time into a budget small enough to spill often.
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_budget_cfg(1 << 10));
    let n = 5000u32;
    for i in 0..n {
        sorter
            .push_record(i.wrapping_mul(2_654_435_761) % 1000, i)
            .unwrap();
    }
    assert!(sorter.stats().spilled_runs > 1);
    let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
    assert_eq!(got.len(), n as usize);
    assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    // Stability: equal keys keep push order.
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0 || w[0].1 < w[1].1));
}

#[test]
fn stream_budget_of_exactly_one_record() {
    // A budget of one record's bytes is degenerate; the sorter must clamp
    // to a workable run size and still sort correctly.
    let record_bytes = std::mem::size_of::<(u64, u64)>();
    let mut sorter: StreamSorter<u64, u64> =
        StreamSorter::with_config(tiny_budget_cfg(record_bytes));
    let n = 1000u64;
    for i in 0..n {
        sorter.push_record(n - i, i).unwrap();
    }
    assert!(
        sorter.stats().spilled_runs > 0,
        "degenerate budget must spill"
    );
    let got = sorter.finish_vec().unwrap();
    assert_eq!(got.len(), n as usize);
    assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn stream_all_equal_keys_is_stable_across_spills() {
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_budget_cfg(1 << 10));
    let n = 8000u32;
    for i in 0..n {
        sorter.push_record(42, i).unwrap();
    }
    assert!(sorter.stats().spilled_runs > 1);
    let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
    let want: Vec<(u32, u32)> = (0..n).map(|i| (42, i)).collect();
    assert_eq!(got, want, "all-equal stream must come back in push order");
}

#[test]
fn stream_empty_batches_are_harmless() {
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::new();
    sorter.push(&[]).unwrap();
    sorter.push(&[(3, 0), (1, 1)]).unwrap();
    sorter.push(&[]).unwrap();
    assert_eq!(sorter.len(), 2);
    let got = sorter.finish_vec().unwrap();
    assert_eq!(got, vec![(1, 1), (3, 0)]);
}

#[test]
fn stream_single_record_and_empty_finish_into() {
    let sorter: StreamSorter<u64, ()> = StreamSorter::new();
    let mut out: Vec<(u64, ())> = vec![];
    sorter.finish_into(&mut out).unwrap();
    assert!(out.is_empty());

    let mut one: StreamSorter<u64, ()> = StreamSorter::new();
    one.push_record(9, ()).unwrap();
    let mut out = vec![(0u64, ())];
    one.finish_into(&mut out).unwrap();
    assert_eq!(out, vec![(9, ())]);
}

// ---------------------------------------------------------------------------
// stream::StreamGroupBy edge cases
// ---------------------------------------------------------------------------

#[test]
fn group_by_batch_size_one_and_all_equal() {
    let mut gb: StreamGroupBy<u32, CountAgg> =
        StreamGroupBy::with_config(CountAgg, tiny_budget_cfg(1 << 10));
    for _ in 0..5000 {
        gb.push_record(7, ()).unwrap();
    }
    // Spill counters are reconciled with the background writer lazily;
    // flushing makes them exact before comparing.
    gb.flush_spills().unwrap();
    assert!(gb.stats().spilled_runs > 1);
    // Every spilled run collapses the all-equal buffer to one partial.
    assert_eq!(
        gb.stats().partial_aggregates,
        gb.stats().spilled_runs as u64
    );
    let got = gb.finish_vec().unwrap();
    assert_eq!(got, vec![(7, 5000)]);
}

// ---------------------------------------------------------------------------
// Spill robustness through the public API: a truncated run file must
// surface as an io::Error from finish()/finish_into(), never as a shorter
// (or panicking) output.
// ---------------------------------------------------------------------------

/// Builds a spilled sorter over `base`, truncating the first run file by
/// `cut_bytes` before finishing.
fn truncated_sorter(base: &std::path::Path, cut_bytes: u64) -> StreamSorter<u32, u32> {
    let cfg = dtsort::StreamConfig {
        spill_dir: Some(base.to_path_buf()),
        ..tiny_budget_cfg(1 << 10)
    };
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
    for i in 0..4000u32 {
        sorter.push_record(i % 97, i).unwrap();
    }
    assert!(sorter.stats().spilled_runs > 1);
    // Find one spilled run file under the sorter's unique subdirectory.
    let run_file = std::fs::read_dir(base)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .flat_map(|d| std::fs::read_dir(d.path()).unwrap().filter_map(|e| e.ok()))
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .expect("a spilled run file must exist");
    let len = std::fs::metadata(&run_file).unwrap().len();
    assert!(len > cut_bytes);
    let f = std::fs::File::options()
        .write(true)
        .open(&run_file)
        .unwrap();
    f.set_len(len - cut_bytes).unwrap();
    sorter
}

#[test]
fn truncated_spill_file_fails_streaming_finish() {
    let base = std::env::temp_dir().join(format!("pisort-trunc-a-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    // Truncate mid-record (5 bytes) — must be an error, not a short stream.
    let err = match truncated_sorter(&base, 5).finish() {
        Err(e) => e,
        Ok(stream) => panic!(
            "finish() must fail on a truncated run, got a stream of {} records",
            stream.count()
        ),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn truncated_spill_file_fails_materializing_finish() {
    let base = std::env::temp_dir().join(format!("pisort-trunc-b-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    // Truncate exactly one whole record — the subtler case: every read of
    // the shortened file would still succeed until the count runs out.
    let record = std::mem::size_of::<u64>() as u64 + std::mem::size_of::<u32>() as u64;
    let sorter = truncated_sorter(&base, record);
    let n = sorter.len();
    let mut out = vec![(0u32, 0u32); n];
    let err = sorter
        .finish_into(&mut out)
        .expect_err("finish_into() must fail on a truncated run");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    std::fs::remove_dir_all(&base).ok();
}
