//! End-to-end tests of the observability layer through the public API:
//! the global metrics registry must mirror the engines' inline stats
//! exactly, `is_settled` must describe the pipelined spill accounting
//! window, tracing must cost nothing when disabled, and the JSON exports
//! must have the documented shape.
//!
//! The obs enable state and registry are process-global, so every test
//! here serializes on one mutex and measures counter *deltas* around its
//! own workload.

use pisort::dtsort::{SortConfig, StreamConfig};
use pisort::obs;
use pisort::stream::{CountAgg, StreamGroupBy, StreamSorter};
use std::sync::{Mutex, OnceLock};

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A panicking sibling test must not cascade into poison errors here.
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A budget small enough that the workloads below spill several runs.
fn spilling_cfg(trace: bool) -> StreamConfig {
    StreamConfig {
        memory_budget_bytes: 32 << 10,
        trace,
        // Exercise the read-ahead merge path even on single-CPU hosts.
        merge_read_ahead: Some(true),
        sort: SortConfig {
            base_case_threshold: 64,
            ..SortConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn input(n: u32) -> Vec<(u32, u32)> {
    (0..n).map(|i| (i.rotate_left(16), i)).collect()
}

#[test]
fn metrics_mirror_stream_sorter_stats_exactly() {
    let _guard = obs_lock();
    obs::enable();
    let before = obs::global().snapshot();
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(spilling_cfg(true));
    let data = input(60_000);
    for chunk in data.chunks(997) {
        sorter.push(chunk).unwrap();
    }
    // Settle the pipelined writer so the inline stats are exact, then
    // the registry deltas must match them number for number.
    sorter.flush_spills().unwrap();
    let stats = sorter.stats().clone();
    assert!(stats.is_settled);
    assert!(stats.spilled_runs > 0, "workload must spill");
    let after = obs::global().snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("stream.records_pushed"), stats.records_pushed);
    assert_eq!(delta("stream.spilled_runs"), stats.spilled_runs as u64);
    assert_eq!(delta("stream.spilled_bytes"), stats.spilled_bytes);
    let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
    let mut want = data;
    want.sort_by_key(|r| r.0);
    assert_eq!(got, want);
}

#[test]
fn metrics_mirror_groupby_stats_exactly() {
    let _guard = obs_lock();
    obs::enable();
    let before = obs::global().snapshot();
    let mut gb: StreamGroupBy<u32, CountAgg> =
        StreamGroupBy::with_config(CountAgg, spilling_cfg(true));
    let n = 4096 * 30u32;
    for i in 0..n {
        gb.push_record(i % 4096, ()).unwrap();
    }
    gb.flush_spills().unwrap();
    let stats = gb.stats().clone();
    assert!(stats.is_settled);
    assert!(stats.spilled_runs > 0, "workload must spill");
    let after = obs::global().snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("groupby.records_pushed"), stats.records_pushed);
    assert_eq!(delta("groupby.spilled_runs"), stats.spilled_runs as u64);
    assert_eq!(delta("groupby.spilled_bytes"), stats.spilled_bytes);
    assert_eq!(
        delta("groupby.partial_aggregates"),
        stats.partial_aggregates
    );
    let got: Vec<(u32, u64)> = gb.finish().unwrap().collect();
    assert_eq!(got.len(), 4096);
    assert!(got.iter().all(|&(_, c)| c == u64::from(n) / 4096));
}

#[test]
fn stats_settle_only_after_flush() {
    let _guard = obs_lock();
    // Pipelined mode: right after a push that submitted a run to the
    // background writer, the spill counters lag and `is_settled` says so.
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(spilling_cfg(false));
    assert!(sorter.stats().is_settled, "nothing in flight initially");
    let data = input(60_000);
    sorter.push(&data).unwrap();
    assert!(
        !sorter.stats().is_settled,
        "a just-submitted run must be reported as in flight"
    );
    sorter.flush_spills().unwrap();
    assert!(sorter.stats().is_settled, "flush_spills settles the stats");
    assert_eq!(sorter.stats().records_pushed, data.len() as u64);
    drop(sorter);

    // Synchronous mode never has anything in flight.
    let cfg = StreamConfig {
        synchronous_spill: true,
        ..spilling_cfg(false)
    };
    let mut sync_sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
    sync_sorter.push(&data).unwrap();
    assert!(sync_sorter.stats().is_settled);
    assert!(sync_sorter.stats().spilled_runs > 0);
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = obs_lock();
    obs::disable();
    // Give detached read-ahead threads of a previously finished test a
    // moment to exit before measuring, then start from a clean slate.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let _ = obs::drain_spans();
    let touches_before = obs::global().touches();
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(spilling_cfg(false));
    let data = input(60_000);
    for chunk in data.chunks(997) {
        sorter.push(chunk).unwrap();
    }
    let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
    assert_eq!(got.len(), data.len());
    // A full spilling sort must not have recorded a single metric sample
    // or span while tracing is off.
    assert_eq!(obs::global().touches(), touches_before);
    let (events, dropped) = obs::drain_spans();
    // A straggling `prefetch` span guard from an earlier (enabled) test may
    // still close during this window; everything else must be silent.
    let stray: Vec<_> = events.iter().filter(|e| e.name != "prefetch").collect();
    assert!(stray.is_empty(), "unexpected spans: {stray:?}");
    assert_eq!(dropped, 0);
}

#[test]
fn traced_session_does_not_leak_tracing_into_the_next() {
    let _guard = obs_lock();
    // Regression (sticky trace flag): `StreamConfig::trace` used to flip a
    // process-global that stayed on forever, so one traced session turned
    // tracing on for every later tenant.  It is now a scoped, refcounted
    // enable owned by the engine: once a traced session is fully dropped,
    // an untraced session must record nothing.
    obs::disable();
    let run = |trace: bool| {
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(spilling_cfg(trace));
        let data = input(60_000);
        for chunk in data.chunks(997) {
            sorter.push(chunk).unwrap();
        }
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        assert_eq!(got.len(), data.len());
    };
    run(true);
    assert!(!obs::enabled(), "tracing must revert when the session ends");
    let (traced_events, _) = obs::drain_spans();
    assert!(
        traced_events.iter().any(|e| e.name == "sort_run"),
        "the traced session must have recorded"
    );
    // Let the traced session's detached read-ahead threads close their
    // last `prefetch` guards before measuring the silent window.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let _ = obs::drain_spans();
    let touches_before = obs::global().touches();
    run(false);
    assert_eq!(
        obs::global().touches(),
        touches_before,
        "an untraced session after a traced one must not record metrics"
    );
    let (events, _) = obs::drain_spans();
    let stray: Vec<_> = events.iter().filter(|e| e.name != "prefetch").collect();
    assert!(stray.is_empty(), "leaked spans: {stray:?}");
}

#[test]
fn trace_exports_have_documented_shape() {
    let _guard = obs_lock();
    obs::enable();
    let _ = obs::drain_spans();
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(spilling_cfg(true));
    let data = input(60_000);
    for chunk in data.chunks(997) {
        sorter.push(chunk).unwrap();
    }
    let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
    assert_eq!(got.len(), data.len());
    let (events, _) = obs::drain_spans();
    for name in ["sort_run", "spill_write", "merge"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "expected a {name:?} span in {:?}",
            events.iter().map(|e| e.name).collect::<Vec<_>>()
        );
    }
    let chrome = obs::chrome_trace_json(&events);
    assert!(chrome.starts_with("{\"traceEvents\": ["));
    assert!(chrome.contains("\"ph\": \"X\""));
    assert!(chrome.contains("\"name\": \"sort_run\""));
    let timeline = obs::timeline_json(&events);
    assert!(timeline.starts_with('['));
    assert!(timeline.contains("\"start_ns\""));
    let metrics = obs::global().snapshot().to_json();
    assert!(metrics.contains("\"counters\""));
    assert!(metrics.contains("\"stream.records_pushed\""));
    assert!(metrics.contains("\"histograms\""));
}
