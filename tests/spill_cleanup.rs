//! Spill-file lifecycle: every spill file a stream engine creates must be
//! gone from disk after the engine is torn down — on normal completion,
//! on early drop, during panic unwinding, and after I/O errors — for the
//! sorter and the group-by, under synchronous and pipelined spilling and
//! both spill encodings.
//!
//! Each scenario points `spill_dir` at a test-owned base directory, so
//! "cleaned up" is simply "the base directory is empty again": the unique
//! per-engine spill subdirectory (and everything in it) is removed by the
//! engine's drop glue, which must also hold while the background writer
//! thread of the pipelined path is mid-flight.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use stream::{
    FaultKind, FaultPlan, SpillCompression, SpillIoHandle, SpillIoMode, StreamGroupBy,
    StreamSorter, SumAgg,
};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty base directory unique to one scenario of one test run.
fn case_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pisort-cleanup-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_empty_and_remove(base: &Path, ctx: &str) {
    let leftovers: Vec<_> = std::fs::read_dir(base)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "leaked spill state [{ctx}]: {leftovers:?}"
    );
    std::fs::remove_dir_all(base).ok();
}

fn cfg(
    base: &Path,
    compression: SpillCompression,
    synchronous: bool,
    io: SpillIoMode,
) -> dtsort::StreamConfig {
    dtsort::StreamConfig {
        spill_dir: Some(base.to_path_buf()),
        spill_compression: compression,
        synchronous_spill: synchronous,
        spill_io: io,
        spill_io_workers: 2,
        spill_io_queue_depth: 8,
        ..dtsort::StreamConfig::with_memory_budget(16 << 10)
    }
}

/// The (compression, spill-mode, io-backend) matrix every scenario below
/// runs under.
fn matrix() -> Vec<(SpillCompression, bool, SpillIoMode)> {
    use SpillCompression::{DeltaLz, Off};
    let mut m = Vec::new();
    for io in [SpillIoMode::Blocking, SpillIoMode::Batched] {
        for (c, s) in [(Off, true), (Off, false), (DeltaLz, true), (DeltaLz, false)] {
            m.push((c, s, io));
        }
    }
    m
}

fn spilled_sorter(
    base: &Path,
    compression: SpillCompression,
    sync: bool,
    io: SpillIoMode,
) -> StreamSorter<u32, u32> {
    let mut s: StreamSorter<u32, u32> = StreamSorter::with_config(cfg(base, compression, sync, io));
    let batch: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i.rotate_left(16), i)).collect();
    s.push(&batch).unwrap();
    assert!(s.stats().spilled_runs > 0, "premise: runs on disk");
    s
}

fn spilled_group_by(
    base: &Path,
    compression: SpillCompression,
    sync: bool,
    io: SpillIoMode,
) -> StreamGroupBy<u32, SumAgg> {
    let mut g: StreamGroupBy<u32, SumAgg> =
        StreamGroupBy::with_config(SumAgg, cfg(base, compression, sync, io));
    let batch: Vec<(u32, u64)> = (0..40_000u32).map(|i| (i.rotate_left(16), 1)).collect();
    g.push(&batch).unwrap();
    assert!(g.stats().spilled_runs > 0, "premise: partials on disk");
    g
}

#[test]
fn sorter_cleans_up_after_full_drain() {
    for (compression, sync, io) in matrix() {
        let ctx = format!("sorter drain compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("sorter-drain");
        let stream = spilled_sorter(&base, compression, sync, io)
            .finish()
            .unwrap();
        assert!(std::fs::read_dir(&base).unwrap().count() > 0, "[{ctx}]");
        let n = stream.count();
        assert_eq!(n, 20_000, "[{ctx}]");
        assert_empty_and_remove(&base, &ctx);
    }
}

#[test]
fn sorter_cleans_up_when_dropped_before_and_mid_merge() {
    for (compression, sync, io) in matrix() {
        // Dropped without ever calling finish (spills possibly in flight
        // to the writer thread).
        let ctx = format!("sorter early-drop compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("sorter-drop");
        drop(spilled_sorter(&base, compression, sync, io));
        assert_empty_and_remove(&base, &ctx);

        // Dropped with the merge only partially consumed: run cursors and
        // read-ahead prefetchers are still open on the spill files.
        let ctx =
            format!("sorter mid-merge-drop compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("sorter-middrop");
        let mut stream = spilled_sorter(&base, compression, sync, io)
            .finish()
            .unwrap();
        for _ in 0..100 {
            stream.next().unwrap();
        }
        drop(stream);
        assert_empty_and_remove(&base, &ctx);
    }
}

#[test]
fn group_by_cleans_up_after_full_drain_and_early_drop() {
    for (compression, sync, io) in matrix() {
        let ctx = format!("group-by drain compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("groupby-drain");
        let groups = spilled_group_by(&base, compression, sync, io)
            .finish()
            .unwrap();
        assert!(std::fs::read_dir(&base).unwrap().count() > 0, "[{ctx}]");
        let total: u64 = groups.map(|(_, c)| c).sum();
        assert_eq!(total, 40_000, "[{ctx}]");
        assert_empty_and_remove(&base, &ctx);

        let ctx = format!("group-by early-drop compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("groupby-drop");
        drop(spilled_group_by(&base, compression, sync, io));
        assert_empty_and_remove(&base, &ctx);

        let ctx =
            format!("group-by mid-merge-drop compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("groupby-middrop");
        let mut groups = spilled_group_by(&base, compression, sync, io)
            .finish()
            .unwrap();
        groups.next().unwrap();
        drop(groups);
        assert_empty_and_remove(&base, &ctx);
    }
}

#[test]
fn spill_files_are_cleaned_up_during_panic_unwinding() {
    // A panic on the owning thread unwinds through the engine's drop glue,
    // which must still stop the writer thread and remove the directory.
    for (compression, sync, io) in matrix() {
        for engine in ["sorter", "group-by"] {
            let ctx = format!("{engine} panic compression={compression:?} sync={sync} io={io:?}");
            let base = case_dir("panic");
            let thrown = catch_unwind(AssertUnwindSafe(|| {
                if engine == "sorter" {
                    let _s = spilled_sorter(&base, compression, sync, io);
                    panic!("consumer bug [{ctx}]");
                } else {
                    let _g = spilled_group_by(&base, compression, sync, io);
                    panic!("consumer bug [{ctx}]");
                }
            }));
            assert!(thrown.is_err(), "[{ctx}]");
            assert_empty_and_remove(&base, &ctx);
        }
    }
}

#[test]
fn spill_files_are_cleaned_up_after_merge_io_errors() {
    // Deleting a spill file out from under the sorter makes finish() fail
    // at cursor-open time; the error path must still tear down the spill
    // directory (including the surviving runs).
    for (compression, sync, io) in matrix() {
        let ctx = format!("io-error compression={compression:?} sync={sync} io={io:?}");
        let base = case_dir("ioerr");
        let mut sorter = spilled_sorter(&base, compression, sync, io);
        sorter.flush_spills().unwrap();
        // Remove one run file from the engine's unique spill subdirectory.
        let sub = std::fs::read_dir(&base).unwrap().next().unwrap().unwrap();
        let victim = std::fs::read_dir(sub.path())
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        std::fs::remove_file(victim.path()).unwrap();
        let err = sorter
            .finish()
            .err()
            .expect("missing run must fail the merge");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "[{ctx}]");
        assert_empty_and_remove(&base, &ctx);
    }
}

#[test]
fn spill_files_are_cleaned_up_after_injected_faults() {
    // Deterministic injected failures ([`FaultPlan::nth`]) on each
    // spill-I/O hot spot — run write, fsync, cursor read, mid-merge
    // streaming read — under both backends and both formats.  Whether the
    // engine absorbs the fault, surfaces a typed error, or panics
    // mid-drain (the documented streaming-read contract), teardown must
    // leave the base directory empty.
    let scenarios: &[(&str, FaultKind, u64)] = &[
        ("write-enospc", FaultKind::WriteEnospc, 2),
        ("torn-write", FaultKind::TornWrite, 2),
        ("fsync", FaultKind::FsyncTransient, 1),
        ("read", FaultKind::ReadTransient, 1),
        ("mid-merge-read", FaultKind::ReadTransient, 40),
    ];
    for (compression, sync, io) in matrix() {
        for &(name, kind, n) in scenarios {
            let ctx = format!("fault {name} compression={compression:?} sync={sync} io={io:?}");
            let base = case_dir("fault");
            let handle = match io {
                SpillIoMode::Blocking => SpillIoHandle::blocking(),
                SpillIoMode::Batched => SpillIoHandle::batched(2, 8),
            }
            .with_faults(FaultPlan::nth(kind, n));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut s: StreamSorter<u32, u32> =
                    StreamSorter::with_config_and_io(cfg(&base, compression, sync, io), handle);
                let batch: Vec<(u32, u32)> =
                    (0..20_000u32).map(|i| (i.rotate_left(16), i)).collect();
                let _ = s.push(&batch);
                // Drain partially on success, so drop still holds open
                // cursors; an Err from finish tears down immediately.
                if let Ok(mut stream) = s.finish() {
                    for _ in 0..200 {
                        stream.next();
                    }
                }
            }));
            if let Err(panic) = outcome {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                assert!(
                    msg.contains("injected") || msg.contains("I/O error reading spilled run"),
                    "unattributable panic [{ctx}]: {msg}"
                );
            }
            assert_empty_and_remove(&base, &ctx);
        }
    }
}
